// Package views maintains declarative per-client subscriptions over world
// state as incremental materialized views — the paper's thesis (what a
// client sees is a query; serving a crowd means maintaining those queries,
// not re-running them) applied to the engine's own substrate. A
// subscription is a compiled SGL predicate over one class extent, optionally
// folded to an aggregate (count, sum, top-k), and each tick the registry
// re-evaluates it only for the rows the engine changefeed marked, emitting a
// columnar delta (adds / updates / removes, or the new aggregate) instead of
// rescanning the extent per client.
//
// The machinery reuses the engine's execution stack end to end:
//
//   - predicates sem-check through the program's schema and classify
//     through analysis.AnalyzeViewPred — unstable predicates (cross-object
//     reads, extent iteration) pin their subscription to the rescan path;
//   - stable predicates compile to vexpr mask kernels. Literal constants
//     are canonicalized into frame slots first, so the ten-thousand
//     subscriptions that differ only in thresholds share one compiled
//     program (and one machine register slab) with per-subscription
//     constants fed through Env.Slots lanes;
//   - plan.Costs.ChooseView arbitrates delta-maintain vs rescan per
//     subscription per tick from the same cost vocabulary as ChooseExec;
//   - spatial interest subscriptions build rectangular predicates whose
//     reach plan.InteractionRadius bounds — the same box the partitioned
//     executor ghosts, which is why the changefeed (and thus every view)
//     is identical under Workers > 1 and Partitions > 1.
//
// Everything the registry retains — membership sets, delta buffers,
// candidate lanes, constant lanes — is reused across ticks; steady-state
// maintenance of a warmed subscription set performs zero heap allocations.
package views

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/parser"
	"repro/internal/table"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// Kind selects what a subscription delivers.
type Kind uint8

const (
	// Select delivers the matching rows themselves: adds/updates/removes
	// with columnar payloads.
	Select Kind = iota
	// Count delivers the number of matching rows.
	Count
	// Sum delivers the sum of a numeric attribute over matching rows,
	// refolded in ascending-id order so the result is bit-identical to a
	// fresh rescan.
	Sum
	// TopK delivers the K matching rows with the largest key attribute
	// (ties broken by ascending id), maintained incrementally with
	// recompute-on-retract.
	TopK
)

// Def declares one subscription.
type Def struct {
	// Class names the subscribed extent.
	Class string
	// Pred is an SGL boolean expression over the class's own row; empty
	// subscribes to every row.
	Pred string
	// Payload lists state attributes delivered with Select adds/updates.
	// Columns are delivered as float64 payloads (string attributes as
	// dictionary codes); set-valued attributes have no columnar form.
	Payload []string
	// Kind selects row delivery or an aggregate fold.
	Kind Kind
	// Attr is the folded attribute (Sum) or ranking key (TopK).
	Attr string
	// K bounds the TopK result.
	K int
	// Mode pins the maintenance strategy; ViewAuto lets the cost model
	// decide per tick. Soundness overrides it: unstable predicates and
	// resyncs always rescan.
	Mode plan.ViewMode
}

// SubID identifies a subscription within its registry.
type SubID int64

// TopEntry is one ranked row of a TopK result.
type TopEntry struct {
	ID  value.ID
	Key float64
}

// Delta is one subscription's per-tick change set. All slices alias
// registry-retained buffers: they are valid only during the Apply callback
// and must be copied to retain. Lists are sorted by ascending id.
type Delta struct {
	Sub   SubID
	Class string
	Tick  int64

	// Resync marks a full refresh: the client must discard its view state
	// and replace it with AddIDs/AddCols (emitted after subscription,
	// hibernate→restore, or an unaccounted structure change).
	Resync bool

	AddIDs  []value.ID
	AddCols [][]float64 // per payload attr, aligned with AddIDs
	UpdIDs  []value.ID
	UpdCols [][]float64
	RemIDs  []value.ID

	// AggChanged reports Agg (Count/Sum) or Top (TopK) carries a new value.
	AggChanged bool
	Agg        float64
	Top        []TopEntry

	changed bool
}

// Bytes is the wire size of the delta at 8 bytes per id or payload cell —
// the per-tick bandwidth a client of this subscription costs.
func (d *Delta) Bytes() int64 {
	n := 8 * (len(d.AddIDs) + len(d.UpdIDs) + len(d.RemIDs))
	for _, c := range d.AddCols {
		n += 8 * len(c)
	}
	for _, c := range d.UpdCols {
		n += 8 * len(c)
	}
	if d.AggChanged {
		n += 8
	}
	n += 16 * len(d.Top)
	return int64(n)
}

func (d *Delta) reset(id SubID, class string, tick int64) {
	d.Sub, d.Class, d.Tick = id, class, tick
	d.Resync = false
	d.AddIDs = d.AddIDs[:0]
	d.UpdIDs = d.UpdIDs[:0]
	d.RemIDs = d.RemIDs[:0]
	for i := range d.AddCols {
		d.AddCols[i] = d.AddCols[i][:0]
	}
	for i := range d.UpdCols {
		d.UpdCols[i] = d.UpdCols[i][:0]
	}
	d.AggChanged = false
	d.Agg = 0
	d.Top = d.Top[:0]
	d.changed = false
}

// Sub is one live subscription.
type Sub struct {
	id  SubID
	def Def
	cs  *classState

	pred     ast.Expr  // canonicalized predicate (constants → frame slots)
	consts   []float64 // per-subscription constants, in slot order
	frame    []value.Value
	key      string    // canonical shape key (kernel cache key)
	pp       *predProg // shared kernel; nil → scalar closure path
	scalarFn expr.Fn   // scalar fallback / unstable-predicate evaluator
	reads    []int     // predicate state reads
	payload  []int     // payload attr indices (Select)
	aggAttr  int       // Sum/TopK attr index; -1 otherwise
	stable   bool
	reasons  []string

	// cols is reads ∪ payload ∪ aggAttr: the column versions whose
	// stillness (plus an unchanged structure version) makes skipping the
	// subscription entirely sound.
	cols       []int
	lastStruct uint64
	lastCols   []uint64
	versValid  bool
	fresh      bool // force rescan + Resync delta on next Apply

	members    []value.ID // current matching ids, ascending
	memScratch []value.ID

	agg float64
	top []TopEntry

	d Delta
}

// ID returns the subscription's registry id.
func (s *Sub) ID() SubID { return s.id }

// Def returns the subscription as declared.
func (s *Sub) Def() Def { return s.def }

// Stable reports whether the predicate is delta-maintainable; when false,
// Reasons explains why every tick rescans.
func (s *Sub) Stable() bool { return s.stable }

// Reasons returns the stability analysis's why-reasons (nil when Stable).
func (s *Sub) Reasons() []string { return s.reasons }

// Members returns a copy of the current matching ids, ascending.
func (s *Sub) Members() []value.ID {
	out := make([]value.ID, len(s.members))
	copy(out, s.members)
	return out
}

// Agg returns the current aggregate value (Count/Sum).
func (s *Sub) Agg() float64 { return s.agg }

// Top returns a copy of the current TopK ranking.
func (s *Sub) Top() []TopEntry {
	out := make([]TopEntry, len(s.top))
	copy(out, s.top)
	return out
}

// predProg is one compiled predicate shape, shared by every subscription
// whose predicate canonicalizes to the same key.
type predProg struct {
	prog    *vexpr.Prog
	nConsts int
}

// classState is the registry's per-class maintenance state: the drained
// changefeed, and candidate lanes shared by every subscription on the class.
type classState struct {
	name string
	cls  *schema.Class
	tab  *table.Table
	subs []*Sub // ascending SubID

	// Drained feed, copied out of engine scratch each Apply.
	rows    []int32
	killed  []value.ID
	resync  bool
	drained bool

	// Candidate lanes over rows, built lazily per Apply: gathered payload
	// lanes for gatherCols (attr-indexed), the candidate id lane, and the
	// ids as values.
	gatherCols []int
	lanes      [][]float64
	idLane     []float64
	candIDs    []value.ID
	lanesBuilt bool
	idsBuilt   bool

	fullIDLane []float64 // whole-extent id lane for rescanning kernels
}

// Registry maintains every subscription of one engine world. Not
// goroutine-safe: Apply must be called between ticks from the goroutine
// driving the world, the same discipline as engine.World itself.
type Registry struct {
	eng   *engine.World
	prog  *compile.Program
	costs plan.Costs

	nextID    SubID
	subs      []*Sub // ascending SubID
	byID      map[SubID]*Sub
	classes   map[string]*classState
	classList []*classState

	progCache map[string]*predProg
	mach      vexpr.Machine
	env       vexpr.Env // retained: a per-call Env escapes to the heap

	// Shared per-Apply scratch.
	slotLanes [][]float64 // constant lanes, indexed by canonical slot
	slotSub   *Sub        // whose constants currently fill slotLanes
	slotLen   int
	mask      []float64
	addPairs  []idRow
	updPairs  []idRow
	fullPairs []idRow
	topCand   []TopEntry

	drainFn func(engine.ClassDelta)

	// Per-Apply counters.
	deltaRows  int64
	rescans    int64
	deltaBytes int64
}

type idRow struct {
	id  value.ID
	row int32
}

// New builds a registry over an engine world and enables its changefeed.
func New(eng *engine.World, costs plan.Costs) *Registry {
	r := &Registry{
		eng:       eng,
		prog:      eng.Program(),
		costs:     costs,
		byID:      map[SubID]*Sub{},
		classes:   map[string]*classState{},
		progCache: map[string]*predProg{},
	}
	r.drainFn = r.copyFeed
	eng.EnableChangeFeed()
	return r
}

// Subscribe registers a subscription and returns its handle. The first
// Apply after Subscribe evaluates it from a full rescan and emits a Resync
// delta carrying the complete initial result.
func (r *Registry) Subscribe(def Def) (*Sub, error) {
	cp := r.prog.Classes[def.Class]
	if cp == nil {
		return nil, fmt.Errorf("views: unknown class %q", def.Class)
	}
	predSrc := def.Pred
	if strings.TrimSpace(predSrc) == "" {
		predSrc = "true"
	}
	e, err := parser.ParseExpr(predSrc)
	if err != nil {
		return nil, fmt.Errorf("views: predicate: %w", err)
	}
	ty, err := r.prog.Info.AnalyzeExpr(def.Class, e)
	if err != nil {
		return nil, fmt.Errorf("views: predicate: %w", err)
	}
	if ty.Kind != value.KindBool {
		return nil, fmt.Errorf("views: predicate must be boolean, got %v", ty.Kind)
	}
	s := &Sub{def: def, aggAttr: -1}
	s.compilePred(def.Class, e)

	switch def.Kind {
	case Select:
		for _, name := range def.Payload {
			i := cp.Class.StateIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("views: unknown payload attribute %s.%s", def.Class, name)
			}
			if cp.Class.State[i].Kind == value.KindSet {
				return nil, fmt.Errorf("views: payload attribute %s.%s is set-valued and has no columnar form", def.Class, name)
			}
			s.payload = append(s.payload, i)
		}
	case Count:
		if len(def.Payload) > 0 {
			return nil, fmt.Errorf("views: aggregate subscriptions carry no payload")
		}
	case Sum, TopK:
		if len(def.Payload) > 0 {
			return nil, fmt.Errorf("views: aggregate subscriptions carry no payload")
		}
		i := cp.Class.StateIndex(def.Attr)
		if i < 0 {
			return nil, fmt.Errorf("views: unknown aggregate attribute %s.%s", def.Class, def.Attr)
		}
		if cp.Class.State[i].Kind != value.KindNumber {
			return nil, fmt.Errorf("views: aggregate attribute %s.%s is not numeric", def.Class, def.Attr)
		}
		s.aggAttr = i
		if def.Kind == TopK && def.K <= 0 {
			return nil, fmt.Errorf("views: TopK needs K > 0")
		}
	default:
		return nil, fmt.Errorf("views: unknown subscription kind %d", def.Kind)
	}

	// Version-watched columns: predicate reads plus everything delivered.
	seen := map[int]bool{}
	for _, c := range s.reads {
		seen[c] = true
	}
	for _, c := range s.payload {
		seen[c] = true
	}
	if s.aggAttr >= 0 {
		seen[s.aggAttr] = true
	}
	for c := range len(cp.Class.State) {
		if seen[c] {
			s.cols = append(s.cols, c)
		}
	}
	s.lastCols = make([]uint64, len(s.cols))
	s.d.AddCols = make([][]float64, len(s.payload))
	s.d.UpdCols = make([][]float64, len(s.payload))

	cs := r.classes[def.Class]
	if cs == nil {
		cs = &classState{name: def.Class, cls: cp.Class, tab: r.eng.ClassTable(def.Class)}
		r.classes[def.Class] = cs
		r.classList = append(r.classList, cs)
	}
	s.cs = cs
	s.fresh = true
	s.recompileKernel(r)

	r.nextID++
	s.id = r.nextID
	r.subs = append(r.subs, s)
	r.byID[s.id] = s
	cs.subs = append(cs.subs, s)
	cs.recomputeGatherCols()
	return s, nil
}

// Unsubscribe removes a subscription.
func (r *Registry) Unsubscribe(id SubID) bool {
	s, ok := r.byID[id]
	if !ok {
		return false
	}
	delete(r.byID, id)
	r.subs = removeSub(r.subs, s)
	s.cs.subs = removeSub(s.cs.subs, s)
	s.cs.recomputeGatherCols()
	return true
}

// Subs returns the number of live subscriptions.
func (r *Registry) Subs() int { return len(r.subs) }

// Get returns a subscription by id.
func (r *Registry) Get(id SubID) (*Sub, bool) {
	s, ok := r.byID[id]
	return s, ok
}

func removeSub(subs []*Sub, s *Sub) []*Sub {
	for i, x := range subs {
		if x == s {
			return append(subs[:i], subs[i+1:]...)
		}
	}
	return subs
}

func (cs *classState) recomputeGatherCols() {
	cs.gatherCols = cs.gatherCols[:0]
	seen := map[int]bool{}
	for _, s := range cs.subs {
		for _, c := range s.cols {
			seen[c] = true
		}
	}
	for c := range len(cs.cls.State) {
		if seen[c] {
			cs.gatherCols = append(cs.gatherCols, c)
		}
	}
}

// Detach releases the engine before hibernation; Apply becomes a no-op
// until Attach. Subscription state (membership, aggregates) is retained so
// clients stay subscribed across the gap.
func (r *Registry) Detach() { r.eng = nil }

// Attach rebinds the registry to a (restored) engine world: tables and
// dictionaries are fresh objects, so every predicate kernel recompiles and
// every subscription resyncs on the next Apply.
func (r *Registry) Attach(eng *engine.World) {
	r.eng = eng
	r.prog = eng.Program()
	eng.EnableChangeFeed()
	r.mach = vexpr.Machine{}
	clear(r.progCache)
	for _, cs := range r.classList {
		cs.tab = eng.ClassTable(cs.name)
	}
	for _, s := range r.subs {
		s.recompileKernel(r)
		s.fresh = true
	}
}

// Attached reports whether the registry currently drives an engine.
func (r *Registry) Attached() bool { return r.eng != nil }

// InterestPred builds the rectangular predicate for a spatial
// interest-radius subscription: attrs within radius of center on every
// axis. The box's reach is validated through plan.InteractionRadius — the
// same bound the partitioned executor derives ghost margins from — so an
// unbounded region is rejected here rather than silently costing a
// whole-extent scan.
func InterestPred(attrs []string, center []float64, radius float64) (string, error) {
	if len(attrs) == 0 || len(attrs) != len(center) {
		return "", fmt.Errorf("views: interest needs one center coordinate per attribute")
	}
	lo := make([]float64, len(attrs))
	hi := make([]float64, len(attrs))
	for i, c := range center {
		lo[i], hi[i] = c-radius, c+radius
	}
	reachLo, reachHi := plan.InteractionRadius(center, lo, hi)
	if !plan.BoundedReach(reachLo, reachHi) {
		return "", fmt.Errorf("views: interest region is unbounded")
	}
	var b strings.Builder
	for i, a := range attrs {
		if i > 0 {
			b.WriteString(" && ")
		}
		fmt.Fprintf(&b, "%s >= %s && %s <= %s",
			a, strconv.FormatFloat(lo[i], 'g', -1, 64),
			a, strconv.FormatFloat(hi[i], 'g', -1, 64))
	}
	return b.String(), nil
}
