package views_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
	"repro/internal/views"
	"repro/internal/workload"
)

func unitWorld(t *testing.T, n int, opts engine.Options) *engine.World {
	t.Helper()
	sc := core.MustLoad("fig2", core.SrcFig2)
	w, err := sc.NewWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 {
		if _, err := core.PopulateUnits(w, workload.Uniform(n, 120, 120, 7), 10); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func mustSub(t *testing.T, r *views.Registry, def views.Def) *views.Sub {
	t.Helper()
	s, err := r.Subscribe(def)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bruteMembers recomputes a predicate's matching ids from scratch through
// the engine's scalar read path, ascending by id — the registry's canonical
// membership (and Sum fold) order.
func bruteMembers(w *engine.World, class string, pass func(id value.ID) bool) []value.ID {
	var out []value.ID
	for _, id := range w.IDs(class) {
		if pass(id) {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

func idsEqual(a, b []value.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectLifecycle walks one Select subscription through its whole
// delta vocabulary: the initial resync snapshot, an update to a member, an
// add when a row crosses the predicate, and a remove on kill.
func TestSelectLifecycle(t *testing.T) {
	w := unitWorld(t, 0, engine.Options{})
	var ids []value.ID
	for i := 0; i < 4; i++ {
		id, err := w.Spawn("Unit", map[string]value.Value{
			"x": value.Num(float64(1000 * i)), "y": value.Num(float64(1000 * i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	r := views.New(w, plan.DefaultCosts())
	if err := w.SetState("Unit", ids[0], "health", value.Num(50)); err != nil {
		t.Fatal(err)
	}
	s := mustSub(t, r, views.Def{
		Class: "Unit", Pred: "health < 90", Payload: []string{"health", "x"},
	})
	if !s.Stable() {
		t.Fatalf("own-row threshold predicate must be stable, reasons: %v", s.Reasons())
	}

	var deltas []string
	capture := func(d *views.Delta) {
		deltas = append(deltas, fmt.Sprintf("resync=%v add=%v addH=%v upd=%v updH=%v rem=%v",
			d.Resync, d.AddIDs, d.AddCols[0], d.UpdIDs, d.UpdCols[0], d.RemIDs))
	}

	// First Apply: resync snapshot with the one matching row.
	r.Apply(capture)
	want := fmt.Sprintf("resync=true add=[%d] addH=[50] upd=[] updH=[] rem=[]", ids[0])
	if len(deltas) != 1 || deltas[0] != want {
		t.Fatalf("initial resync: got %v, want [%s]", deltas, want)
	}
	if !idsEqual(s.Members(), []value.ID{ids[0]}) {
		t.Fatalf("members after resync: %v", s.Members())
	}

	// Member's payload changes → update; a second row crosses → add.
	deltas = nil
	if err := w.SetState("Unit", ids[0], "health", value.Num(40)); err != nil {
		t.Fatal(err)
	}
	if err := w.SetState("Unit", ids[2], "health", value.Num(10)); err != nil {
		t.Fatal(err)
	}
	r.Apply(capture)
	want = fmt.Sprintf("resync=false add=[%d] addH=[10] upd=[%d] updH=[40] rem=[]", ids[2], ids[0])
	if len(deltas) != 1 || deltas[0] != want {
		t.Fatalf("update+add: got %v, want [%s]", deltas, want)
	}

	// One member leaves by predicate, the other by death.
	deltas = nil
	if err := w.SetState("Unit", ids[2], "health", value.Num(95)); err != nil {
		t.Fatal(err)
	}
	if err := w.Kill("Unit", ids[0]); err != nil {
		t.Fatal(err)
	}
	r.Apply(capture)
	want = fmt.Sprintf("resync=false add=[] addH=[] upd=[] updH=[] rem=[%d %d]", ids[0], ids[2])
	if len(deltas) != 1 || deltas[0] != want {
		t.Fatalf("removes: got %v, want [%s]", deltas, want)
	}
	if len(s.Members()) != 0 {
		t.Fatalf("members after removes: %v", s.Members())
	}

	// Quiet tick: version skip, no delta.
	deltas = nil
	r.Apply(capture)
	if len(deltas) != 0 {
		t.Fatalf("quiet tick emitted %v", deltas)
	}
}

// TestAggregatesTrackBruteForce drives the crowding scenario with churn and
// checks Count/Sum/TopK after every tick against from-scratch recomputation.
func TestAggregatesTrackBruteForce(t *testing.T) {
	w := unitWorld(t, 200, engine.Options{})
	r := views.New(w, plan.DefaultCosts())
	cnt := mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 100", Kind: views.Count})
	sum := mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 100", Kind: views.Sum, Attr: "health"})
	top := mustSub(t, r, views.Def{Class: "Unit", Pred: "health < 100", Kind: views.TopK, Attr: "health", K: 5})

	health := func(id value.ID) float64 { return w.MustGet("Unit", id, "health").AsNumber() }
	hurt := func(id value.ID) bool { return health(id) < 100 }
	rng := rand.New(rand.NewSource(3))
	for tick := 0; tick < 10; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		if tick%3 == 1 {
			if _, err := w.Spawn("Unit", map[string]value.Value{
				"x": value.Num(rng.Float64() * 120), "y": value.Num(rng.Float64() * 120),
				"health": value.Num(30 + rng.Float64()*40),
			}); err != nil {
				t.Fatal(err)
			}
			ids := w.IDs("Unit")
			if err := w.Kill("Unit", ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		r.Apply(nil)

		members := bruteMembers(w, "Unit", hurt)
		if got := int(cnt.Agg()); got != len(members) {
			t.Fatalf("tick %d: count %d, brute %d", tick, got, len(members))
		}
		// Sum refolds ascending-id in the registry; fold the same way here.
		wantSum := 0.0
		for _, id := range members {
			wantSum += health(id)
		}
		if got := sum.Agg(); got != wantSum {
			t.Fatalf("tick %d: sum %v, brute %v", tick, got, wantSum)
		}
		wantTop := append([]value.ID(nil), members...)
		// Highest health first, id ascending on ties.
		for i := range wantTop {
			for j := i + 1; j < len(wantTop); j++ {
				hi, hj := health(wantTop[i]), health(wantTop[j])
				if hj > hi || (hj == hi && wantTop[j] < wantTop[i]) {
					wantTop[i], wantTop[j] = wantTop[j], wantTop[i]
				}
			}
		}
		if len(wantTop) > 5 {
			wantTop = wantTop[:5]
		}
		gotTop := top.Top()
		if len(gotTop) != len(wantTop) {
			t.Fatalf("tick %d: top len %d, brute %d", tick, len(gotTop), len(wantTop))
		}
		for i, e := range gotTop {
			if e.ID != wantTop[i] || e.Key != health(wantTop[i]) {
				t.Fatalf("tick %d: top[%d] = %+v, brute id %d key %v",
					tick, i, e, wantTop[i], health(wantTop[i]))
			}
		}
	}
}

// srcChase is a minimal ref-chasing script: every unit pours damage into
// its target, so a predicate reading target.hp is the canonical unstable
// subscription — the target's row changes without the subscriber's.
const srcChase = `
class Unit {
  state:
    number hp = 100;
    ref<Unit> target = null;
  effects:
    number dmg : sum;
  update:
    hp = hp - dmg;
  run {
    if (target != null) {
      target.dmg <- 1;
    }
  }
}
`

// TestUnstablePredicateRescans pins the stability gate: a predicate chasing
// a ref is unstable, explains itself, and takes the rescan path every tick
// while still producing brute-force-correct membership.
func TestUnstablePredicateRescans(t *testing.T) {
	sc := core.MustLoad("chase", srcChase)
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []value.ID
	for i := 0; i < 12; i++ {
		id, err := w.Spawn("Unit", map[string]value.Value{
			"hp": value.Num(60 + 7*float64(i%5)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Chase ring: i damages i+1, so relative hp order shifts over ticks.
	for i, id := range ids {
		if i%4 == 3 {
			continue // a few idle units keep some rows out of the feed
		}
		if err := w.SetState("Unit", id, "target", value.Ref(ids[(i+1)%len(ids)])); err != nil {
			t.Fatal(err)
		}
	}
	r := views.New(w, plan.DefaultCosts())
	s := mustSub(t, r, views.Def{Class: "Unit", Pred: "target != null && target.hp < hp"})
	if s.Stable() || len(s.Reasons()) == 0 {
		t.Fatalf("ref-chasing predicate must be unstable with reasons, got stable=%v %v",
			s.Stable(), s.Reasons())
	}
	for tick := 0; tick < 4; tick++ {
		if err := w.RunTick(); err != nil {
			t.Fatal(err)
		}
		r.Apply(nil)
		if r.Rescans() != 1 {
			t.Fatalf("tick %d: unstable sub must rescan, rescans=%d", tick, r.Rescans())
		}
		want := bruteMembers(w, "Unit", func(id value.ID) bool {
			tgt := w.MustGet("Unit", id, "target")
			if tgt.IsNullRef() {
				return false
			}
			thp, ok := w.Get("Unit", tgt.AsRef(), "hp")
			if !ok {
				return false
			}
			return thp.AsNumber() < w.MustGet("Unit", id, "hp").AsNumber()
		})
		if !idsEqual(s.Members(), want) {
			t.Fatalf("tick %d: members %v, brute %v", tick, s.Members(), want)
		}
	}
}

// TestInterestPred checks the spatial interest helper builds a bounded box
// predicate that subscribes exactly the rows inside it.
func TestInterestPred(t *testing.T) {
	w := unitWorld(t, 0, engine.Options{})
	inside, err := w.Spawn("Unit", map[string]value.Value{"x": value.Num(10), "y": value.Num(12)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Spawn("Unit", map[string]value.Value{"x": value.Num(40), "y": value.Num(12)}); err != nil {
		t.Fatal(err)
	}
	pred, err := views.InterestPred([]string{"x", "y"}, []float64{8, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := views.New(w, plan.DefaultCosts())
	s := mustSub(t, r, views.Def{Class: "Unit", Pred: pred})
	if !s.Stable() {
		t.Fatalf("interest box must be stable: %v", s.Reasons())
	}
	r.Apply(nil)
	if !idsEqual(s.Members(), []value.ID{inside}) {
		t.Fatalf("interest members %v, want [%d]", s.Members(), inside)
	}
	if _, err := views.InterestPred([]string{"x"}, []float64{0, 0}, 1); err == nil {
		t.Fatal("mismatched attrs/center must error")
	}
}

// TestSubscribeValidation covers the declarative surface's error paths.
func TestSubscribeValidation(t *testing.T) {
	w := unitWorld(t, 0, engine.Options{})
	r := views.New(w, plan.DefaultCosts())
	bad := []views.Def{
		{Class: "Ghost"},
		{Class: "Unit", Pred: "health +"},
		{Class: "Unit", Pred: "health + 1"},
		{Class: "Unit", Payload: []string{"mana"}},
		{Class: "Unit", Kind: views.Count, Payload: []string{"health"}},
		{Class: "Unit", Kind: views.Sum, Attr: "nope"},
		{Class: "Unit", Kind: views.TopK, Attr: "health", K: 0},
	}
	for i, def := range bad {
		if _, err := r.Subscribe(def); err == nil {
			t.Errorf("def %d (%+v) must fail", i, def)
		}
	}
	s := mustSub(t, r, views.Def{Class: "Unit"})
	if !s.Stable() {
		t.Fatal("empty predicate must be stable")
	}
	if r.Subs() != 1 {
		t.Fatalf("subs = %d", r.Subs())
	}
	if !r.Unsubscribe(s.ID()) || r.Unsubscribe(s.ID()) {
		t.Fatal("unsubscribe must succeed once")
	}
}
