// Package core is the heart of the reproduction: it assembles the paper's
// primary contribution — imperative SGL scripts compiled to relational tick
// plans and executed set-at-a-time — into ready-to-run scenarios shared by
// the tests, the benchmark harness and the examples. Each scenario pairs a
// canonical SGL source (mirroring the paper's figures and motivating
// examples) with spawn helpers, so every consumer measures exactly the same
// workload.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/baseline"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
	"repro/internal/workload"
)

// SrcFig2 is the paper's Figure 2 accum-loop, embedded in a complete class:
// each unit counts neighbors in a square range and suffers crowding damage.
const SrcFig2 = `
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number range = 10;
    number health = 100;
  effects:
    number damage : sum;
  update:
    health = health - damage;
  run {
    accum number cnt with sum over Unit u from Unit {
      if (u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        cnt <- 1;
      }
    } in {
      if (cnt > 3) {
        damage <- (cnt - 3) * 0.125;
      }
    }
  }
}
`

// SrcRTS is a two-player combat script: units seek the weakest enemy in
// range (maxby selection), deal damage, and regenerate; movement intentions
// go to the physics component via avg-combined velocity effects (the
// paper's Figure 1 effect declarations).
const SrcRTS = `
class Soldier {
  state:
    string player = "";
    number x = 0 by physics;
    number y = 0 by physics;
    number tx = 0;
    number ty = 0;
    number range = 15;
    number health = 100;
    number attack = 2;
  effects:
    number vx : avg;
    number vy : avg;
    number damage : sum;
  update:
    health = health - damage + 0.1;
  run {
    accum ref<Soldier> foe with maxby over Soldier u from Soldier {
      if (u.player != player &&
          u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        foe <- u by (0 - u.health);
      }
    } in {
      if (foe != null) {
        foe.damage <- attack;
      } else {
        vx <- (tx - x) * 0.1;
        vy <- (ty - y) * 0.1;
      }
    }
  }
}
`

// SrcMarket is the §3.1 marketplace: buyers purchase from a seller inside
// an atomic block constrained against negative balances and stock — the
// scenario whose race is the classic duping bug.
const SrcMarket = `
class Trader {
  state:
    number gold = 0;
    number stock = 0;
    number wants = 0;
    number price = 25;
    ref<Trader> seller = null;
  effects:
    number dgold : sum;
    number dstock : sum;
  update:
    gold = gold + dgold;
    stock = stock + dstock;
  run {
    if (wants > 0 && seller != null && gold >= price) {
      atomic (gold >= 0, seller.stock >= 0) {
        dgold <- 0 - price;
        seller.dgold <- price;
        dstock <- 1;
        seller.dstock <- 0 - 1;
      }
    }
  }
}
`

// SrcMarketUnsafe is SrcMarket without the atomic block: the same writes
// flow as plain effects, reproducing the duping behaviour transactions
// exist to prevent (experiment E4's control arm).
const SrcMarketUnsafe = `
class Trader {
  state:
    number gold = 0;
    number stock = 0;
    number wants = 0;
    number price = 25;
    ref<Trader> seller = null;
  effects:
    number dgold : sum;
    number dstock : sum;
  update:
    gold = gold + dgold;
    stock = stock + dstock;
  run {
    if (wants > 0 && seller != null && gold >= price) {
      dgold <- 0 - price;
      seller.dgold <- price;
      dstock <- 1;
      seller.dstock <- 0 - 1;
    }
  }
}
`

// SrcVehicles is a §4.2-scale traffic workload shaped for per-object
// expression work rather than joins: every vehicle advances along its
// heading, burns fuel, bounces off the network boundary and flags
// congestion stress — all lets, conditionals and self-targeted effects
// over numeric columns, the exact shape the vectorized batch evaluator
// executes whole-extent. With hundreds of thousands of vehicles this is
// the hot path where object-at-a-time interpretation overhead dominates.
const SrcVehicles = `
class Vehicle {
  state:
    number x = 0;
    number y = 0;
    number dx = 1;
    number dy = 0;
    number speed = 3;
    number fuel = 1000;
    number odo = 0;
    number stress = 0;
  effects:
    number mx : sum;
    number my : sum;
    number burn : sum;
    number flip : max;
  update:
    x = clamp(x + mx, 0, 4000);
    y = clamp(y + my, 0, 4000);
    dx = flip > 0 ? 0 - dx : dx;
    dy = flip > 0 ? 0 - dy : dy;
    fuel = fuel - burn;
    odo = odo + abs(mx) + abs(my);
    stress = clamp(stress * 0.95 + flip, 0, 100);
  run {
    let v = fuel > 0 ? speed : 0;
    mx <- dx * v;
    my <- dy * v;
    burn <- 0.01 + v * 0.002 + stress * 0.0001;
    if (x + dx * v > 4000 || x + dx * v < 0 || y + dy * v > 4000 || y + dy * v < 0) {
      flip <- 1;
    }
  }
}
`

// SrcTraffic is the partition-friendly §4.2 traffic workload: vehicles
// advance along axis-aligned roads and run one neighborhood accum per tick
// (congestion: count cars inside a ±12 headway box and slow down). Unlike
// SrcVehicles it carries a spatial join, so shared-nothing partitioned
// execution (Options.Partitions) has real ghost replication, cross-partition
// effects and boundary migrations to measure — the quantities E11/E12/E16
// report. The headway box is bounded and self-only, so the engine derives a
// finite interaction radius and keeps the join partition-local.
const SrcTraffic = `
class Car {
  state:
    number x = 0;
    number y = 0;
    number dx = 1;
    number dy = 0;
    number speed = 3;
    number slow = 0;
  effects:
    number mx : sum;
    number my : sum;
    number near : sum;
  update:
    x = clamp(x + mx, 0, 4000);
    y = clamp(y + my, 0, 4000);
    dx = (x <= 0 || x >= 4000) ? 0 - dx : dx;
    dy = (y <= 0 || y >= 4000) ? 0 - dy : dy;
    slow = clamp(near * 0.25, 0, 4);
  run {
    accum number cnt with sum over Car u from Car {
      if (u.x >= x - 12 && u.x <= x + 12 && u.y >= y - 12 && u.y <= y + 12) {
        cnt <- 1;
      }
    } in {
      near <- cnt;
      let v = speed / (1 + slow);
      mx <- dx * v;
      my <- dy * v;
    }
  }
}
`

// SrcFlock is a join-dominated flocking workload: every boid runs three
// range-joins per tick over its neighborhood (count, centroid-x, centroid-y)
// and steers toward the local centroid. Per-object expression work is
// trivial; essentially the whole tick is accum-join probing, matching and
// folding — the workload regime where batched join execution (gathered
// candidate rows + columnar folds) pays, and the stress test for per-tick
// index build cost since every boid moves every tick.
const SrcFlock = `
class Boid {
  state:
    number x = 0;
    number y = 0;
    number vx = 1;
    number vy = 0;
    number sight = 20;
  effects:
    number ax : sum;
    number ay : sum;
  update:
    vx = clamp((vx + ax) * 0.92, 0 - 4, 4);
    vy = clamp((vy + ay) * 0.92, 0 - 4, 4);
    x = clamp(x + vx, 0, 2000);
    y = clamp(y + vy, 0, 2000);
  run {
    accum number cnt with sum over Boid u from Boid {
      if (u.x >= x - sight && u.x <= x + sight && u.y >= y - sight && u.y <= y + sight) {
        cnt <- 1;
      }
    } in {
      accum number sx with sum over Boid u from Boid {
        if (u.x >= x - sight && u.x <= x + sight && u.y >= y - sight && u.y <= y + sight) {
          sx <- u.x;
        }
      } in {
        accum number sy with sum over Boid u from Boid {
          if (u.x >= x - sight && u.x <= x + sight && u.y >= y - sight && u.y <= y + sight) {
            sy <- u.y;
          }
        } in {
          if (cnt > 1) {
            ax <- (sx / cnt - x) * 0.05;
            ay <- (sy / cnt - y) * 0.05;
          }
        }
      }
    }
  }
}
`

// SrcSwarm is the drift workload behind experiment E17: motes carry
// constant per-object velocities aimed slightly ahead of a shared
// rendezvous point, so the whole population simultaneously translates
// (drift) and contracts (clustering) tick over tick, while one bounded
// neighborhood accum (local density) gives partitioned execution real
// ghosts, migrations and per-partition load to measure. Any layout frozen
// at first-tick bounds degrades on this population — the measured box goes
// stale and ownership piles into edge and hot-spot partitions — which is
// exactly what adaptive layout epochs (Options.Rebalance) are for.
const SrcSwarm = `
class Mote {
  state:
    number x = 0;
    number y = 0;
    number vx = 0;
    number vy = 0;
    number near = 0;
  effects:
    number nb : sum;
  update:
    x = x + vx;
    y = y + vy;
    near = nb;
  run {
    accum number cnt with sum over Mote u from Mote {
      if (u.x >= x - 10 && u.x <= x + 10 && u.y >= y - 10 && u.y <= y + 10) {
        cnt <- 1;
      }
    } in {
      nb <- cnt;
    }
  }
}
`

// SrcGuard is the multi-tick + reactive example of §3.2: move to a post,
// pick up an item, attack — with a handler that arms fleeing at low health.
const SrcGuard = `
class Guard {
  state:
    number x = 0;
    number y = 0;
    number px = 0;
    number py = 0;
    number health = 100;
    number fleeing = 0;
    number items = 0;
    ref<Guard> foe = null;
  effects:
    number dx : avg;
    number dy : avg;
    number damage : sum;
    number pickup : sum;
    number flee : max;
  update:
    x = x + dx;
    y = y + dy;
    health = health - damage;
    items = items + pickup;
    fleeing = flee;
  handlers:
    when (health < 30) {
      flee <- 1;
    }
  run {
    dx <- (px - x) * 0.5;
    dy <- (py - y) * 0.5;
    waitNextTick;
    pickup <- 1;
    waitNextTick;
    if (foe != null) {
      foe.damage <- 5;
    }
  }
}
`

// SrcArena is the battle-royale spectator workload behind the
// subscription-view experiments (internal/views, experiment E21): two teams
// brawl in a hotspot (pressure-scaled damage, the Figure 2 accum shape),
// movers walk long diagonals through physics-integrated velocity effects,
// and the camping majority neither moves nor fights — so the per-tick
// changefeed covers the combatants and movers, a small fraction of the
// extent, which is exactly the asymmetry incremental view maintenance
// exploits.
const SrcArena = `
class Fighter {
  state:
    number team = 0;
    number x = 0 by physics;
    number y = 0 by physics;
    number tx = 0;
    number ty = 0;
    number range = 8;
    number attack = 0.5;
    number health = 100;
  effects:
    number vx : avg;
    number vy : avg;
    number dmg : sum;
  update:
    health = health - dmg;
  run {
    accum number pressure with sum over Fighter u from Fighter {
      if (u.team != team &&
          u.x >= x - range && u.x <= x + range &&
          u.y >= y - range && u.y <= y + range) {
        pressure <- 1;
      }
    } in {
      if (pressure > 0) {
        dmg <- pressure * attack;
      }
      if ((tx - x) * (tx - x) + (ty - y) * (ty - y) > 1) {
        vx <- (tx - x) * 0.05;
        vy <- (ty - y) * 0.05;
      }
    }
  }
}
`

// Scenario bundles a loaded program with its spawn recipe. It also caches
// the engine-compiled plan (kernels, analysis, site batches) so that many
// worlds instantiated from one scenario share a single compilation — the
// many-world server's plan cache builds on this.
type Scenario struct {
	Name string
	Info *sem.Info
	Prog *compile.Program

	mu       sync.Mutex
	compiled [2]*engine.Compiled // [0] fused, [1] unfused
}

// Compiled returns the engine compilation for this scenario, compiling on
// first use and caching per fusion mode thereafter.
func (s *Scenario) Compiled(unfused bool) *engine.Compiled {
	i := 0
	if unfused {
		i = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.compiled[i] == nil {
		if unfused {
			s.compiled[i] = engine.CompileUnfused(s.Prog)
		} else {
			s.compiled[i] = engine.Compile(s.Prog)
		}
	}
	return s.compiled[i]
}

// LoadScenario parses, checks and compiles one of the canonical sources.
func LoadScenario(name, src string) (*Scenario, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	return &Scenario{Name: name, Info: info, Prog: prog}, nil
}

// MustLoad panics on load errors (for benchmarks and examples with
// compile-time-constant sources).
func MustLoad(name, src string) *Scenario {
	s, err := LoadScenario(name, src)
	if err != nil {
		panic(err)
	}
	return s
}

// NewWorld instantiates the engine for the scenario, reusing the cached
// compilation so repeated instantiation pays only per-world state.
func (s *Scenario) NewWorld(opts engine.Options) (*engine.World, error) {
	return engine.NewFromCompiled(s.Compiled(opts.Unfused), opts)
}

// NewBaseline instantiates the object-at-a-time interpreter.
func (s *Scenario) NewBaseline() *baseline.World { return baseline.New(s.Info) }

// Spawner abstracts the engine and baseline worlds for shared population
// helpers.
type Spawner interface {
	Spawn(class string, init map[string]value.Value) (value.ID, error)
}

// PopulateUnits spawns Fig-2 units at the given positions.
func PopulateUnits(w Spawner, ps []workload.Pos, rng float64) ([]value.ID, error) {
	ids := make([]value.ID, 0, len(ps))
	for _, p := range ps {
		id, err := w.Spawn("Unit", map[string]value.Value{
			"x": value.Num(p.X), "y": value.Num(p.Y), "range": value.Num(rng),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PopulateMarket spawns sellers and contending buyers per the market
// workload; it returns seller ids then buyer ids.
func PopulateMarket(w Spawner, m workload.Market) (sellers, buyers []value.ID, err error) {
	for i := 0; i < m.Sellers; i++ {
		id, err := w.Spawn("Trader", map[string]value.Value{
			"gold": value.Num(0), "stock": value.Num(float64(m.Stock)),
			"price": value.Num(m.Price),
		})
		if err != nil {
			return nil, nil, err
		}
		sellers = append(sellers, id)
	}
	for i := 0; i < m.TotalBuyers(); i++ {
		sid := sellers[i%len(sellers)]
		id, err := w.Spawn("Trader", map[string]value.Value{
			"gold": value.Num(m.Gold), "wants": value.Num(1),
			"price": value.Num(m.Price), "seller": value.Ref(sid),
		})
		if err != nil {
			return nil, nil, err
		}
		buyers = append(buyers, id)
	}
	return sellers, buyers, nil
}

// PopulateSoldiers spawns two armies at the given positions, alternating
// players ("red"/"blue" — the string predicate `u.player != player`
// exercises the dictionary-encoded kernel path), with movement targets at
// the overall centroid so the armies close distance and engage.
func PopulateSoldiers(w Spawner, ps []workload.Pos) ([]value.ID, error) {
	var cx, cy float64
	for _, p := range ps {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(ps))
	if n > 0 {
		cx, cy = cx/n, cy/n
	}
	ids := make([]value.ID, 0, len(ps))
	players := [2]string{"red", "blue"}
	for i, p := range ps {
		id, err := w.Spawn("Soldier", map[string]value.Value{
			"player": value.Str(players[i%2]),
			"x":      value.Num(p.X), "y": value.Num(p.Y),
			"tx": value.Num(cx), "ty": value.Num(cy),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PopulateBoids spawns flock boids at the given positions with deterministic
// initial headings.
func PopulateBoids(w Spawner, ps []workload.Pos) ([]value.ID, error) {
	ids := make([]value.ID, 0, len(ps))
	for i, p := range ps {
		vx, vy := 1.0, 0.0
		switch i % 4 {
		case 1:
			vx, vy = -1, 0.5
		case 2:
			vx, vy = 0.5, -1
		case 3:
			vx, vy = -0.5, 1
		}
		id, err := w.Spawn("Boid", map[string]value.Value{
			"x": value.Num(p.X), "y": value.Num(p.Y),
			"vx": value.Num(vx), "vy": value.Num(vy),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PopulateCars spawns SrcTraffic cars from generated road-network entities
// (workload.TrafficNetwork.Vehicles), deterministic in the input order.
func PopulateCars(w Spawner, ents []workload.Entity) ([]value.ID, error) {
	ids := make([]value.ID, 0, len(ents))
	for _, e := range ents {
		speed := math.Abs(e.VX) + math.Abs(e.VY)
		dx, dy := 1.0, 0.0
		if speed > 0 {
			dx, dy = e.VX/speed, e.VY/speed
		}
		id, err := w.Spawn("Car", map[string]value.Value{
			"x": value.Num(e.X), "y": value.Num(e.Y),
			"dx": value.Num(dx), "dy": value.Num(dy),
			"speed": value.Num(speed),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// PopulateMotes spawns SrcSwarm motes at the given positions. Each mote's
// velocity is the shared drift plus a pull toward the population's initial
// center scaled by rate, so after k ticks the swarm has translated by
// drift·k and contracted by the factor (1 − rate·k): drift and clustering
// in one deterministic kinematic field, no global state needed.
func PopulateMotes(w Spawner, ps []workload.Pos, driftX, driftY, rate float64) ([]value.ID, error) {
	var cx, cy float64
	for _, p := range ps {
		cx += p.X
		cy += p.Y
	}
	if n := float64(len(ps)); n > 0 {
		cx, cy = cx/n, cy/n
	}
	ids := make([]value.ID, 0, len(ps))
	for _, p := range ps {
		id, err := w.Spawn("Mote", map[string]value.Value{
			"x": value.Num(p.X), "y": value.Num(p.Y),
			"vx": value.Num(driftX + (cx-p.X)*rate),
			"vy": value.Num(driftY + (cy-p.Y)*rate),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// SortEntitiesByStripe reorders entities stripe-major (x-stripe, then y,
// then x) — the partition-friendly spawn order: rows of one spatial
// partition land in a contiguous physical span, so the partitioned
// executor's per-partition sweeps stay tight instead of scanning the whole
// extent per partition. The sort is deterministic and in place.
func SortEntitiesByStripe(ents []workload.Entity, stripes int, width float64) {
	if stripes < 1 || width <= 0 {
		return
	}
	sw := width / float64(stripes)
	sort.SliceStable(ents, func(a, b int) bool {
		sa, sb := int(ents[a].X/sw), int(ents[b].X/sw)
		if sa != sb {
			return sa < sb
		}
		if ents[a].Y != ents[b].Y {
			return ents[a].Y < ents[b].Y
		}
		return ents[a].X < ents[b].X
	})
}

// PopulateVehicles spawns vehicles at the given positions with axis-aligned
// headings (road-grid style) and staggered fuel, deterministic in the
// input order.
func PopulateVehicles(w Spawner, ps []workload.Pos) ([]value.ID, error) {
	ids := make([]value.ID, 0, len(ps))
	for i, p := range ps {
		dx, dy := 0.0, 0.0
		switch i % 4 {
		case 0:
			dx = 1
		case 1:
			dx = -1
		case 2:
			dy = 1
		default:
			dy = -1
		}
		id, err := w.Spawn("Vehicle", map[string]value.Value{
			"x": value.Num(p.X), "y": value.Num(p.Y),
			"dx": value.Num(dx), "dy": value.Num(dy),
			"speed": value.Num(2 + float64(i%5)),
			"fuel":  value.Num(500 + float64(i%997)),
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// ArenaSide is the battle-royale map edge length for n fighters: density
// stays fixed as n scales, so the camping majority keeps enough spacing
// that no enemy ever enters weapons range outside the hotspot.
func ArenaSide(n int) float64 { return math.Sqrt(float64(n)) * 40 }

// PopulateArena spawns a battle-royale population: hot·n hotspot fighters
// (alternating teams, standing their ground in a tight square at the map
// center), movers·n travelers walking the long diagonal through the
// center, and the rest campers — team 0, waypoint at their own feet, far
// enough apart that nothing touches them. Deterministic in (n, fractions,
// seed).
func PopulateArena(w Spawner, n int, hot, movers float64, seed int64) ([]value.ID, error) {
	side := ArenaSide(n)
	rng := rand.New(rand.NewSource(seed))
	nHot := int(float64(n) * hot)
	nMov := int(float64(n) * movers)
	ids := make([]value.ID, 0, n)
	for i := 0; i < n; i++ {
		var init map[string]value.Value
		switch {
		case i < nHot:
			// Hotspot: both teams packed into a 40×40 square at the center.
			x := side/2 + (rng.Float64()-0.5)*40
			y := side/2 + (rng.Float64()-0.5)*40
			init = map[string]value.Value{
				"team": value.Num(float64(i % 2)),
				"x":    value.Num(x), "y": value.Num(y),
				"tx": value.Num(x), "ty": value.Num(y),
			}
		case i < nHot+nMov:
			// Movers: spawn anywhere, walk toward the mirrored corner.
			x := rng.Float64() * side
			y := rng.Float64() * side
			init = map[string]value.Value{
				"x": value.Num(x), "y": value.Num(y),
				"tx": value.Num(side - x), "ty": value.Num(side - y),
			}
		default:
			// Campers: scattered, stationary, all on one team.
			x := rng.Float64() * side
			y := rng.Float64() * side
			init = map[string]value.Value{
				"x": value.Num(x), "y": value.Num(y),
				"tx": value.Num(x), "ty": value.Num(y),
			}
		}
		id, err := w.Spawn("Fighter", init)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
