package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestAllScenariosLoad(t *testing.T) {
	for name, src := range map[string]string{
		"fig2":          SrcFig2,
		"rts":           SrcRTS,
		"market":        SrcMarket,
		"market-unsafe": SrcMarketUnsafe,
		"guard":         SrcGuard,
	} {
		sc, err := LoadScenario(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sc.NewWorld(engine.Options{}); err != nil {
			t.Fatalf("%s: NewWorld: %v", name, err)
		}
		if sc.NewBaseline() == nil {
			t.Fatalf("%s: NewBaseline", name)
		}
	}
}

func TestLoadScenarioError(t *testing.T) {
	if _, err := LoadScenario("bad", "class {"); err == nil {
		t.Error("syntax error must surface")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLoad must panic on bad source")
		}
	}()
	MustLoad("bad", "class {")
}

func TestPopulateUnits(t *testing.T) {
	sc := MustLoad("fig2", SrcFig2)
	w, _ := sc.NewWorld(engine.Options{})
	ids, err := PopulateUnits(w, workload.Uniform(25, 100, 100, 1), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 || w.Count("Unit") != 25 {
		t.Fatal("population size")
	}
	if got := w.MustGet("Unit", ids[0], "range").AsNumber(); got != 12 {
		t.Errorf("range = %v", got)
	}
}

func TestPopulateMarketWiring(t *testing.T) {
	sc := MustLoad("market", SrcMarket)
	w, _ := sc.NewWorld(engine.Options{})
	m := workload.Market{Sellers: 2, BuyersPerItem: 3, Stock: 4, Price: 10, Gold: 50}
	sellers, buyers, err := PopulateMarket(w, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(sellers) != 2 || len(buyers) != 6 {
		t.Fatalf("sellers=%d buyers=%d", len(sellers), len(buyers))
	}
	// Buyers alternate across sellers.
	s0 := w.MustGet("Trader", buyers[0], "seller").AsRef()
	s1 := w.MustGet("Trader", buyers[1], "seller").AsRef()
	if s0 == s1 {
		t.Error("buyers must spread across sellers")
	}
	if w.MustGet("Trader", sellers[0], "stock").AsNumber() != 4 {
		t.Error("seller stock")
	}
}

func TestPopulateSoldiers(t *testing.T) {
	sc := MustLoad("rts", SrcRTS)
	w, _ := sc.NewWorld(engine.Options{})
	ids, err := PopulateSoldiers(w, workload.Uniform(10, 100, 100, 2))
	if err != nil {
		t.Fatal(err)
	}
	p0 := w.MustGet("Soldier", ids[0], "player").AsString()
	p1 := w.MustGet("Soldier", ids[1], "player").AsString()
	if p0 == p1 || p0 == "" || p1 == "" {
		t.Errorf("players must alternate, got %q %q", p0, p1)
	}
}
