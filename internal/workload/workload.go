// Package workload generates the synthetic scenarios substituting for the
// paper's commercial game content: RTS explore/combat regimes (§4.1), the
// traffic network with large vehicle counts (§4.2), and the marketplace
// contention scenario behind duping bugs (§3.1). Generators are
// deterministic given a seed.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/value"
)

// Pos is a 2-D position.
type Pos struct{ X, Y float64 }

// Entity is one generated moving object (e.g. a vehicle in the paper's
// million-vehicle traffic simulation): a position plus a per-tick velocity.
type Entity struct {
	ID     value.ID
	X, Y   float64
	VX, VY float64
}

// Uniform scatters n positions uniformly over [0,w)×[0,h) — the "exploring"
// regime: spread out, sparse neighborhoods.
func Uniform(n int, w, h float64, seed int64) []Pos {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pos, n)
	for i := range out {
		out[i] = Pos{rng.Float64() * w, rng.Float64() * h}
	}
	return out
}

// Clustered places n positions in k Gaussian clusters of the given spread —
// the "fighting" regime: dense neighborhoods, large range-query results.
func Clustered(n, k int, spread, w, h float64, seed int64) []Pos {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Pos, k)
	for i := range centers {
		centers[i] = Pos{rng.Float64() * w, rng.Float64() * h}
	}
	out := make([]Pos, n)
	for i := range out {
		c := centers[i%k]
		out[i] = Pos{
			X: clampF(c.X+rng.NormFloat64()*spread, 0, w),
			Y: clampF(c.Y+rng.NormFloat64()*spread, 0, h),
		}
	}
	return out
}

func clampF(x, lo, hi float64) float64 { return math.Min(math.Max(x, lo), hi) }

// Regime labels a workload phase.
type Regime int

// Workload regimes (§4.1: "a strategy game will look very different when
// characters are exploring than when they are fighting").
const (
	Explore Regime = iota
	Combat
)

// RegimeSchedule alternates regimes in blocks of the given length, e.g.
// blocks of 20 ticks: explore ticks 0–19, combat 20–39, ...
func RegimeSchedule(tick, blockLen int) Regime {
	if (tick/blockLen)%2 == 0 {
		return Explore
	}
	return Combat
}

// Positions generates the regime's placement.
func Positions(r Regime, n int, w, h float64, seed int64) []Pos {
	switch r {
	case Combat:
		return Clustered(n, 3, math.Sqrt(w*h)/60, w, h, seed)
	default:
		return Uniform(n, w, h, seed)
	}
}

// TrafficNetwork is a Manhattan road grid: vehicles move along horizontal
// and vertical roads with constant speeds, wrapping at the borders — the
// million-vehicle simulation the paper reports targeting.
type TrafficNetwork struct {
	W, H  float64
	Roads int // roads per direction
	Speed float64
}

// Vehicles spawns n vehicles on the network, alternating directions.
func (t TrafficNetwork) Vehicles(n int, seed int64) []Entity {
	rng := rand.New(rand.NewSource(seed))
	spacingH := t.H / float64(t.Roads)
	spacingV := t.W / float64(t.Roads)
	out := make([]Entity, n)
	for i := range out {
		e := Entity{ID: value.ID(i + 1)}
		if i%2 == 0 { // horizontal road
			road := rng.Intn(t.Roads)
			e.Y = (float64(road) + 0.5) * spacingH
			e.X = rng.Float64() * t.W
			e.VX = t.Speed * dir(rng)
		} else { // vertical road
			road := rng.Intn(t.Roads)
			e.X = (float64(road) + 0.5) * spacingV
			e.Y = rng.Float64() * t.H
			e.VY = t.Speed * dir(rng)
		}
		out[i] = e
	}
	return out
}

// Advance moves vehicles one tick with toroidal wrapping.
func (t TrafficNetwork) Advance(ents []Entity) {
	for i := range ents {
		ents[i].X = math.Mod(ents[i].X+ents[i].VX+t.W, t.W)
		ents[i].Y = math.Mod(ents[i].Y+ents[i].VY+t.H, t.H)
	}
}

func dir(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return 1
	}
	return -1
}

// Teleports applies the paper's "exotic feature": with probability p per
// entity per call, jump to a uniform random position (stress-tests
// continuous-motion assumptions).
func Teleports(ents []Entity, w, h, p float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for i := range ents {
		if rng.Float64() < p {
			ents[i].X = rng.Float64() * w
			ents[i].Y = rng.Float64() * h
			n++
		}
	}
	return n
}

// Market describes a marketplace contention scenario (§3.1): sellers with
// limited stock, buyersPerItem contenders per item.
type Market struct {
	Sellers       int
	BuyersPerItem int
	Stock         int
	Price         float64
	Gold          float64 // buyer starting gold
}

// TotalBuyers returns the number of buyers to spawn.
func (m Market) TotalBuyers() int { return m.Sellers * m.BuyersPerItem }
