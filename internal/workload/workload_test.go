package workload

import (
	"math"
	"testing"
)

func TestUniformDeterministicAndInRange(t *testing.T) {
	a := Uniform(500, 100, 50, 9)
	b := Uniform(500, 100, 50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must generate identical positions")
		}
		if a[i].X < 0 || a[i].X >= 100 || a[i].Y < 0 || a[i].Y >= 50 {
			t.Fatalf("out of range: %+v", a[i])
		}
	}
	c := Uniform(500, 100, 50, 10)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds must differ")
	}
}

func spreadOf(ps []Pos) float64 {
	var mx, my float64
	for _, p := range ps {
		mx += p.X
		my += p.Y
	}
	n := float64(len(ps))
	mx, my = mx/n, my/n
	var v float64
	for _, p := range ps {
		v += (p.X-mx)*(p.X-mx) + (p.Y-my)*(p.Y-my)
	}
	return v / n
}

func TestClusteredIsTighterThanUniform(t *testing.T) {
	u := Uniform(1000, 1000, 1000, 3)
	c := Clustered(1000, 3, 15, 1000, 1000, 3)
	for _, p := range c {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Fatalf("clustered point out of bounds: %+v", p)
		}
	}
	// Per-cluster spread: group points by cluster index (i%3 assignment).
	for k := 0; k < 3; k++ {
		var grp []Pos
		for i := k; i < len(c); i += 3 {
			grp = append(grp, c[i])
		}
		if spreadOf(grp) >= spreadOf(u) {
			t.Fatalf("cluster %d spread %v not below uniform %v", k, spreadOf(grp), spreadOf(u))
		}
	}
}

func TestRegimeSchedule(t *testing.T) {
	if RegimeSchedule(0, 10) != Explore || RegimeSchedule(9, 10) != Explore {
		t.Error("first block is explore")
	}
	if RegimeSchedule(10, 10) != Combat || RegimeSchedule(19, 10) != Combat {
		t.Error("second block is combat")
	}
	if RegimeSchedule(20, 10) != Explore {
		t.Error("alternation")
	}
}

func TestPositionsByRegime(t *testing.T) {
	e := Positions(Explore, 600, 1000, 1000, 5)
	c := Positions(Combat, 600, 1000, 1000, 5)
	if len(e) != 600 || len(c) != 600 {
		t.Fatal("counts")
	}
	if spreadOf(c) >= spreadOf(e) {
		t.Errorf("combat spread %v must be below explore %v", spreadOf(c), spreadOf(e))
	}
}

func TestTrafficNetwork(t *testing.T) {
	net := TrafficNetwork{W: 1000, H: 1000, Roads: 10, Speed: 3}
	vs := net.Vehicles(200, 8)
	if len(vs) != 200 {
		t.Fatal("count")
	}
	spacingH := net.H / float64(net.Roads)
	for i, v := range vs {
		if v.ID == 0 {
			t.Fatal("ids must be assigned")
		}
		moving := math.Abs(v.VX)+math.Abs(v.VY) > 0
		if !moving {
			t.Fatalf("vehicle %d is parked", i)
		}
		if v.VX != 0 {
			// Horizontal driver: y must sit on a road centerline.
			frac := math.Mod(v.Y, spacingH) / spacingH
			if math.Abs(frac-0.5) > 1e-9 {
				t.Fatalf("vehicle %d off-road: y=%v", i, v.Y)
			}
		}
	}
	// Advance wraps toroidally.
	vs[0].X = 999.5
	vs[0].VX = 3
	net.Advance(vs)
	if vs[0].X >= net.W || vs[0].X < 0 {
		t.Fatalf("wrap failed: x=%v", vs[0].X)
	}
}

func TestTeleports(t *testing.T) {
	net := TrafficNetwork{W: 100, H: 100, Roads: 5, Speed: 1}
	vs := net.Vehicles(1000, 2)
	n := Teleports(vs, 100, 100, 0.25, 3)
	if n < 150 || n > 350 {
		t.Errorf("teleported %d of 1000 at p=0.25", n)
	}
	if Teleports(vs, 100, 100, 0, 3) != 0 {
		t.Error("p=0 must teleport nobody")
	}
}

func TestMarket(t *testing.T) {
	m := Market{Sellers: 3, BuyersPerItem: 4}
	if m.TotalBuyers() != 12 {
		t.Errorf("TotalBuyers = %d", m.TotalBuyers())
	}
}
