package combinator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestParse(t *testing.T) {
	for _, name := range []string{"sum", "avg", "min", "max", "count", "and", "or", "minby", "maxby", "union"} {
		k, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("Parse(%q).String() = %q", name, k.String())
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse must reject unknown combinators")
	}
}

func TestAccepts(t *testing.T) {
	if !Sum.Accepts(value.KindNumber) || Sum.Accepts(value.KindBool) {
		t.Error("sum accepts numbers only")
	}
	if !And.Accepts(value.KindBool) || And.Accepts(value.KindNumber) {
		t.Error("and accepts bools only")
	}
	if !SetUnion.Accepts(value.KindSet) || SetUnion.Accepts(value.KindNumber) {
		t.Error("union accepts sets only")
	}
	if MaxBy.Accepts(value.KindSet) {
		t.Error("maxby payload must be scalar")
	}
	if !Count.Accepts(value.KindNumber) || !Count.Accepts(value.KindRef) {
		t.Error("count accepts anything")
	}
}

func addAll(k Kind, ak value.Kind, vs []value.Value, keys []float64) value.Value {
	a := New(k, ak)
	for i, v := range vs {
		key := 0.0
		if keys != nil {
			key = keys[i]
		}
		a.Add(v, key)
	}
	v, _ := a.Result()
	return v
}

func TestScalarCombinators(t *testing.T) {
	nums := []value.Value{value.Num(3), value.Num(-1), value.Num(5), value.Num(5)}
	if got := addAll(Sum, value.KindNumber, nums, nil); got.AsNumber() != 12 {
		t.Errorf("sum = %v", got)
	}
	if got := addAll(Avg, value.KindNumber, nums, nil); got.AsNumber() != 3 {
		t.Errorf("avg = %v", got)
	}
	if got := addAll(Min, value.KindNumber, nums, nil); got.AsNumber() != -1 {
		t.Errorf("min = %v", got)
	}
	if got := addAll(Max, value.KindNumber, nums, nil); got.AsNumber() != 5 {
		t.Errorf("max = %v", got)
	}
	if got := addAll(Count, value.KindNumber, nums, nil); got.AsNumber() != 4 {
		t.Errorf("count = %v", got)
	}
	bools := []value.Value{value.Bool(true), value.Bool(true), value.Bool(false)}
	if got := addAll(And, value.KindBool, bools, nil); got.AsBool() {
		t.Error("and with a false input must be false")
	}
	if got := addAll(Or, value.KindBool, bools, nil); !got.AsBool() {
		t.Error("or with a true input must be true")
	}
}

func TestMinByMaxBy(t *testing.T) {
	vs := []value.Value{value.Ref(1), value.Ref(2), value.Ref(3)}
	keys := []float64{5, 2, 9}
	if got := addAll(MinBy, value.KindRef, vs, keys); got.AsRef() != 2 {
		t.Errorf("minby = %v", got)
	}
	if got := addAll(MaxBy, value.KindRef, vs, keys); got.AsRef() != 3 {
		t.Errorf("maxby = %v", got)
	}
	// Tie-break: equal keys choose the smaller payload, independent of order.
	tie := addAll(MaxBy, value.KindRef, []value.Value{value.Ref(9), value.Ref(4)}, []float64{7, 7})
	tie2 := addAll(MaxBy, value.KindRef, []value.Value{value.Ref(4), value.Ref(9)}, []float64{7, 7})
	if tie.AsRef() != 4 || tie2.AsRef() != 4 {
		t.Errorf("maxby tie-break: %v / %v, want #4", tie, tie2)
	}
}

func TestSetUnionCombinator(t *testing.T) {
	a := New(SetUnion, value.KindSet)
	a.Add(value.Num(1), 0) // single element contribution (the <= form)
	a.Add(value.SetVal(value.NewSet(value.Num(2), value.Num(3))), 0)
	a.Add(value.Num(2), 0)
	v, ok := a.Result()
	if !ok || v.AsSet().Len() != 3 {
		t.Fatalf("union result = %v", v)
	}
}

func TestEmptyResult(t *testing.T) {
	for _, k := range []Kind{Sum, Avg, Min, Max, Count, And, Or, MinBy, MaxBy, SetUnion} {
		a := New(k, value.KindNumber)
		if k == SetUnion {
			a = New(k, value.KindSet)
		}
		v, ok := a.Result()
		if ok {
			t.Errorf("%v: empty accumulator reports a contribution", k)
		}
		if !v.IsValid() {
			t.Errorf("%v: empty result must still be a typed zero", k)
		}
	}
}

func TestRemove(t *testing.T) {
	a := New(Sum, value.KindNumber)
	a.Add(value.Num(5), 0)
	a.Add(value.Num(3), 0)
	if !a.Remove(value.Num(3), 0) {
		t.Fatal("sum must support Remove")
	}
	if v, _ := a.Result(); v.AsNumber() != 5 {
		t.Errorf("after remove: %v", v)
	}
	b := New(Max, value.KindNumber)
	b.Add(value.Num(5), 0)
	if b.Remove(value.Num(5), 0) {
		t.Error("max must not support Remove")
	}
	c := New(Avg, value.KindNumber)
	c.Add(value.Num(2), 0)
	c.Add(value.Num(4), 0)
	c.Remove(value.Num(4), 0)
	if v, _ := c.Result(); v.AsNumber() != 2 {
		t.Errorf("avg after remove: %v", v)
	}
}

func TestReset(t *testing.T) {
	a := New(Sum, value.KindNumber)
	a.Add(value.Num(5), 0)
	a.Reset()
	if a.N() != 0 {
		t.Error("Reset must clear count")
	}
	if _, ok := a.Result(); ok {
		t.Error("Reset must clear contributions")
	}
	a.Add(value.Num(2), 0)
	if v, _ := a.Result(); v.AsNumber() != 2 {
		t.Error("accumulator must be reusable after Reset")
	}
}

func TestIdentity(t *testing.T) {
	cases := map[Kind]value.Value{
		Sum: value.Num(0), Count: value.Num(0),
		Min: value.Num(math.Inf(1)), Max: value.Num(math.Inf(-1)),
		And: value.Bool(true), Or: value.Bool(false),
	}
	for k, want := range cases {
		v, ok := k.Identity()
		if !ok || !v.Equal(want) {
			t.Errorf("%v identity = %v (%v)", k, v, ok)
		}
	}
	if _, ok := Avg.Identity(); ok {
		t.Error("avg has no identity")
	}
}

// Property: for every combinator, merging split partial accumulations in
// any split position equals accumulating sequentially — the algebraic fact
// that makes parallel effect computation correct (§4.2).
func TestMergeEqualsSequentialProperty(t *testing.T) {
	kinds := []Kind{Sum, Avg, Min, Max, Count, And, Or, MinBy, MaxBy}
	f := func(raw []float64, split uint8, kidx uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = float64(i)
			} else {
				raw[i] = math.Mod(x, 1000) // game-scale magnitudes
			}
		}
		k := kinds[int(kidx)%len(kinds)]
		ak := value.KindNumber
		mkVal := func(x float64) value.Value { return value.Num(x) }
		if k == And || k == Or {
			ak = value.KindBool
			mkVal = func(x float64) value.Value { return value.Bool(x > 0) }
		}
		s := int(split) % (len(raw) + 1)

		seq := New(k, ak)
		for _, x := range raw {
			seq.Add(mkVal(x), x)
		}
		left, right := New(k, ak), New(k, ak)
		for _, x := range raw[:s] {
			left.Add(mkVal(x), x)
		}
		for _, x := range raw[s:] {
			right.Add(mkVal(x), x)
		}
		left.Merge(right)

		a, aok := seq.Result()
		b, bok := left.Result()
		if aok != bok {
			return false
		}
		if !aok {
			return true
		}
		if a.Kind() == value.KindNumber {
			return value.NumbersEqual(a.AsNumber(), b.AsNumber(), 1e-9)
		}
		return a.Equal(b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: order of Add calls does not change the result (commutativity),
// required because scripts run in unspecified order (§2.1).
func TestOrderIndependenceProperty(t *testing.T) {
	kinds := []Kind{Sum, Min, Max, Count, And, Or, MinBy, MaxBy}
	f := func(raw []float64, kidx uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				raw[i] = float64(i)
			} else {
				raw[i] = math.Mod(x, 1000) // game-scale magnitudes
			}
		}
		k := kinds[int(kidx)%len(kinds)]
		ak := value.KindNumber
		mkVal := func(x float64) value.Value { return value.Num(x) }
		if k == And || k == Or {
			ak = value.KindBool
			mkVal = func(x float64) value.Value { return value.Bool(x > 0) }
		}
		perm := rand.New(rand.NewSource(seed)).Perm(len(raw))

		a := New(k, ak)
		for _, x := range raw {
			a.Add(mkVal(x), x)
		}
		b := New(k, ak)
		for _, i := range perm {
			b.Add(mkVal(raw[i]), raw[i])
		}
		av, _ := a.Result()
		bv, _ := b.Result()
		if av.Kind() == value.KindNumber {
			return value.NumbersEqual(av.AsNumber(), bv.AsNumber(), 1e-9)
		}
		return av.Equal(bv)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
