// Package combinator implements the ⊕ effect-combination operators of SGL
// (§2, §3.1 of the paper). Every write to an effect variable during a tick
// is folded through the attribute's combinator; combinators must be
// commutative and associative so that writes can be combined in any order,
// including in parallel.
package combinator

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Kind enumerates the built-in combinators.
type Kind uint8

const (
	Invalid  Kind = iota
	Sum           // numeric addition
	Avg           // numeric mean over contributions
	Min           // numeric minimum
	Max           // numeric maximum
	Count         // number of contributions (payload ignored)
	And           // boolean conjunction
	Or            // boolean disjunction
	MinBy         // value carried by the smallest key (deterministic tie-break on key)
	MaxBy         // value carried by the largest key
	SetUnion      // set union (used by the `<=` set-insert operator)
)

// Parse maps an SGL source keyword to a combinator kind.
func Parse(name string) (Kind, error) {
	switch name {
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "count":
		return Count, nil
	case "and":
		return And, nil
	case "or":
		return Or, nil
	case "minby":
		return MinBy, nil
	case "maxby":
		return MaxBy, nil
	case "union":
		return SetUnion, nil
	default:
		return Invalid, fmt.Errorf("combinator: unknown combinator %q", name)
	}
}

func (k Kind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case And:
		return "and"
	case Or:
		return "or"
	case MinBy:
		return "minby"
	case MaxBy:
		return "maxby"
	case SetUnion:
		return "union"
	default:
		return "invalid"
	}
}

// ResultKind returns the value kind a combinator produces given the kind of
// the effect attribute it combines.
func (k Kind) ResultKind(attr value.Kind) value.Kind {
	switch k {
	case Count:
		return value.KindNumber
	case And, Or:
		return value.KindBool
	case SetUnion:
		return value.KindSet
	default:
		return attr
	}
}

// Accepts reports whether the combinator may be declared on an effect
// attribute of the given kind.
func (k Kind) Accepts(attr value.Kind) bool {
	switch k {
	case Sum, Avg, Min, Max:
		return attr == value.KindNumber
	case And, Or:
		return attr == value.KindBool
	case Count:
		return true
	case MinBy, MaxBy:
		// Payload must be scalar so that ties can be broken
		// deterministically regardless of combination order.
		return attr != value.KindSet
	case SetUnion:
		return attr == value.KindSet
	default:
		return false
	}
}

// Accumulator folds effect contributions for a single (object, attribute)
// pair during one tick. The zero Accumulator (after New) represents "no
// contributions"; Result reports whether any arrived.
//
// Accumulators are value types so they can live densely in per-worker
// buffers; Merge combines two partial accumulations, enabling parallel
// effect computation with no synchronization (paper §4.2).
type Accumulator struct {
	kind  Kind
	n     int64
	num   float64     // sum / min / max / bool fold
	key   float64     // MinBy/MaxBy selection key
	val   value.Value // MinBy/MaxBy payload
	set   *value.Set
	attrK value.Kind
}

// New returns an empty accumulator for combinator k over attribute kind ak.
func New(k Kind, ak value.Kind) Accumulator {
	return Accumulator{kind: k, attrK: ak}
}

// Kind returns the combinator kind.
func (a *Accumulator) Kind() Kind { return a.kind }

// Add folds one contribution into the accumulator. For MinBy/MaxBy, key
// selects the winner; other combinators ignore key.
func (a *Accumulator) Add(v value.Value, key float64) {
	switch a.kind {
	case Sum, Avg:
		a.num += v.AsNumber()
	case Min:
		if a.n == 0 || v.AsNumber() < a.num {
			a.num = v.AsNumber()
		}
	case Max:
		if a.n == 0 || v.AsNumber() > a.num {
			a.num = v.AsNumber()
		}
	case Count:
		// payload ignored
	case And:
		if a.n == 0 {
			a.num = 1
		}
		if !v.AsBool() {
			a.num = 0
		}
	case Or:
		if v.AsBool() {
			a.num = 1
		}
	case MinBy:
		if a.n == 0 || key < a.key || (key == a.key && v.Compare(a.val) < 0) {
			a.key, a.val = key, v
		}
	case MaxBy:
		if a.n == 0 || key > a.key || (key == a.key && v.Compare(a.val) < 0) {
			a.key, a.val = key, v
		}
	case SetUnion:
		if a.set == nil {
			a.set = value.NewSet()
		}
		switch v.Kind() {
		case value.KindSet:
			for _, e := range v.AsSet().Elems() {
				a.set.Add(e)
			}
		default:
			a.set.Add(v)
		}
	}
	a.n++
}

// AddPayloads folds a batch of contributions given as raw column payloads
// (bool = 0/1, ref = id), in slice order. keys carries the minby/maxby
// selection keys and may be nil for other combinators. The fold replicates
// Add comparison-for-comparison — including NaN behaviour and the
// deterministic minby/maxby tie-break, which for payload kinds reduces to a
// plain float compare (value.Compare orders those kinds by payload) — so a
// batch fold is bit-identical to the equivalent sequence of Add calls.
// It supports every combinator whose attribute kind has a columnar payload;
// SetUnion (whose contributions are sets) is the caller's responsibility to
// avoid.
func (a *Accumulator) AddPayloads(vals, keys []float64) {
	switch a.kind {
	case Sum, Avg:
		for _, v := range vals {
			a.num += v
		}
	case Min:
		for _, v := range vals {
			if a.n == 0 || v < a.num {
				a.num = v
			}
			a.n++
		}
		return
	case Max:
		for _, v := range vals {
			if a.n == 0 || v > a.num {
				a.num = v
			}
			a.n++
		}
		return
	case Count:
	case And:
		for _, v := range vals {
			if a.n == 0 {
				a.num = 1
			}
			if v == 0 {
				a.num = 0
			}
			a.n++
		}
		return
	case Or:
		for _, v := range vals {
			if v != 0 {
				a.num = 1
			}
			a.n++
		}
		return
	case MinBy:
		for i, v := range vals {
			key := keys[i]
			if a.n == 0 || key < a.key || (key == a.key && v < a.val.AsNumber()) {
				a.key, a.val = key, payloadValue(a.attrK, v)
			}
			a.n++
		}
		return
	case MaxBy:
		for i, v := range vals {
			key := keys[i]
			if a.n == 0 || key > a.key || (key == a.key && v < a.val.AsNumber()) {
				a.key, a.val = key, payloadValue(a.attrK, v)
			}
			a.n++
		}
		return
	case SetUnion:
		panic("combinator: AddPayloads on a set-union accumulator")
	}
	a.n += int64(len(vals))
}

// payloadValue reconstructs a scalar value of kind k from its column
// payload.
func payloadValue(k value.Kind, f float64) value.Value {
	switch k {
	case value.KindBool:
		return value.Bool(f != 0)
	case value.KindRef:
		return value.Ref(value.ID(f))
	default:
		return value.Num(f)
	}
}

// Merge folds another partial accumulation of the same combinator into a.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	switch a.kind {
	case Sum, Avg:
		a.num += b.num
	case Min:
		if b.num < a.num {
			a.num = b.num
		}
	case Max:
		if b.num > a.num {
			a.num = b.num
		}
	case Count:
	case And:
		if b.num == 0 {
			a.num = 0
		}
	case Or:
		if b.num != 0 {
			a.num = 1
		}
	case MinBy:
		if b.key < a.key || (b.key == a.key && b.val.Compare(a.val) < 0) {
			a.key, a.val = b.key, b.val
		}
	case MaxBy:
		if b.key > a.key || (b.key == a.key && b.val.Compare(a.val) < 0) {
			a.key, a.val = b.key, b.val
		}
	case SetUnion:
		if a.set == nil {
			a.set = value.NewSet()
		}
		if b.set != nil {
			for _, e := range b.set.Elems() {
				a.set.Add(e)
			}
		}
	}
	a.n += b.n
}

// Result returns the combined value and whether any contribution arrived.
// With no contributions the second result is false and the first is the
// zero value of the result kind.
func (a *Accumulator) Result() (value.Value, bool) {
	if a.n == 0 {
		return value.Zero(a.kind.ResultKind(a.attrK)), false
	}
	switch a.kind {
	case Sum, Min, Max:
		return value.Num(a.num), true
	case Avg:
		return value.Num(a.num / float64(a.n)), true
	case Count:
		return value.Num(float64(a.n)), true
	case And, Or:
		return value.Bool(a.num != 0), true
	case MinBy, MaxBy:
		return a.val, true
	case SetUnion:
		if a.set == nil {
			return value.SetVal(value.NewSet()), true
		}
		return value.SetVal(a.set.Clone()), true
	default:
		return value.Value{}, false
	}
}

// N returns the number of contributions folded so far.
func (a *Accumulator) N() int64 { return a.n }

// Remove undoes a prior Add. Only the invertible combinators (sum, avg,
// count) support removal; it returns false otherwise. Transaction rollback
// (§3.1) relies on this, which is why the language requires additive
// effects inside atomic blocks.
func (a *Accumulator) Remove(v value.Value, key float64) bool {
	switch a.kind {
	case Sum, Avg:
		a.num -= v.AsNumber()
	case Count:
		// payload ignored
	default:
		return false
	}
	a.n--
	return true
}

// Reset empties the accumulator for reuse, preserving kind information.
func (a *Accumulator) Reset() {
	a.n, a.num, a.key = 0, 0, 0
	a.val = value.Value{}
	a.set = nil
}

// Identity returns the identity element of the combinator where one exists
// (Sum→0, Min→+inf, Max→-inf, Count→0, And→true, Or→false, SetUnion→{}).
// Avg, MinBy and MaxBy have no identity; the second result is false.
func (k Kind) Identity() (value.Value, bool) {
	switch k {
	case Sum, Count:
		return value.Num(0), true
	case Min:
		return value.Num(math.Inf(1)), true
	case Max:
		return value.Num(math.Inf(-1)), true
	case And:
		return value.Bool(true), true
	case Or:
		return value.Bool(false), true
	case SetUnion:
		return value.SetVal(value.NewSet()), true
	default:
		return value.Value{}, false
	}
}
