// Package combinator implements the ⊕ effect-combination operators of SGL
// (§2, §3.1 of the paper). Every write to an effect variable during a tick
// is folded through the attribute's combinator; combinators must be
// commutative and associative so that writes can be combined in any order,
// including in parallel.
package combinator

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// Kind enumerates the built-in combinators.
type Kind uint8

const (
	Invalid  Kind = iota
	Sum           // numeric addition
	Avg           // numeric mean over contributions
	Min           // numeric minimum
	Max           // numeric maximum
	Count         // number of contributions (payload ignored)
	And           // boolean conjunction
	Or            // boolean disjunction
	MinBy         // value carried by the smallest key (deterministic tie-break on key)
	MaxBy         // value carried by the largest key
	SetUnion      // set union (used by the `<=` set-insert operator)
)

// Parse maps an SGL source keyword to a combinator kind.
func Parse(name string) (Kind, error) {
	switch name {
	case "sum":
		return Sum, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "count":
		return Count, nil
	case "and":
		return And, nil
	case "or":
		return Or, nil
	case "minby":
		return MinBy, nil
	case "maxby":
		return MaxBy, nil
	case "union":
		return SetUnion, nil
	default:
		return Invalid, fmt.Errorf("combinator: unknown combinator %q", name)
	}
}

func (k Kind) String() string {
	switch k {
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case Count:
		return "count"
	case And:
		return "and"
	case Or:
		return "or"
	case MinBy:
		return "minby"
	case MaxBy:
		return "maxby"
	case SetUnion:
		return "union"
	default:
		return "invalid"
	}
}

// ResultKind returns the value kind a combinator produces given the kind of
// the effect attribute it combines.
func (k Kind) ResultKind(attr value.Kind) value.Kind {
	switch k {
	case Count:
		return value.KindNumber
	case And, Or:
		return value.KindBool
	case SetUnion:
		return value.KindSet
	default:
		return attr
	}
}

// Accepts reports whether the combinator may be declared on an effect
// attribute of the given kind.
func (k Kind) Accepts(attr value.Kind) bool {
	switch k {
	case Sum, Avg, Min, Max:
		return attr == value.KindNumber
	case And, Or:
		return attr == value.KindBool
	case Count:
		return true
	case MinBy, MaxBy:
		// Payload must be scalar so that ties can be broken
		// deterministically regardless of combination order.
		return attr != value.KindSet
	case SetUnion:
		return attr == value.KindSet
	default:
		return false
	}
}

// Accumulator folds effect contributions for a single (object, attribute)
// pair during one tick. The zero Accumulator (after New) represents "no
// contributions"; Result reports whether any arrived.
//
// Accumulators are value types so they can live densely in per-worker
// buffers; Merge combines two partial accumulations, enabling parallel
// effect computation with no synchronization (paper §4.2).
type Accumulator struct {
	kind  Kind
	n     int64
	num   float64     // sum / min / max / bool fold
	key   float64     // MinBy/MaxBy selection key
	val   value.Value // MinBy/MaxBy payload
	set   *value.Set
	attrK value.Kind
}

// New returns an empty accumulator for combinator k over attribute kind ak.
func New(k Kind, ak value.Kind) Accumulator {
	return Accumulator{kind: k, attrK: ak}
}

// Kind returns the combinator kind.
func (a *Accumulator) Kind() Kind { return a.kind }

// Add folds one contribution into the accumulator. For MinBy/MaxBy, key
// selects the winner; other combinators ignore key.
func (a *Accumulator) Add(v value.Value, key float64) {
	switch a.kind {
	case Sum, Avg:
		a.num += v.AsNumber()
	case Min:
		if a.n == 0 || v.AsNumber() < a.num {
			a.num = v.AsNumber()
		}
	case Max:
		if a.n == 0 || v.AsNumber() > a.num {
			a.num = v.AsNumber()
		}
	case Count:
		// payload ignored
	case And:
		if a.n == 0 {
			a.num = 1
		}
		if !v.AsBool() {
			a.num = 0
		}
	case Or:
		if v.AsBool() {
			a.num = 1
		}
	case MinBy:
		if a.n == 0 || key < a.key || (key == a.key && v.Compare(a.val) < 0) {
			a.key, a.val = key, v
		}
	case MaxBy:
		if a.n == 0 || key > a.key || (key == a.key && v.Compare(a.val) < 0) {
			a.key, a.val = key, v
		}
	case SetUnion:
		if a.set == nil {
			a.set = value.NewSet()
		}
		switch v.Kind() {
		case value.KindSet:
			for _, e := range v.AsSet().Elems() {
				a.set.Add(e)
			}
		default:
			a.set.Add(v)
		}
	}
	a.n++
}

// AddPayloads folds a batch of contributions given as raw column payloads
// (bool = 0/1, ref = id), in slice order. keys carries the minby/maxby
// selection keys and may be nil for other combinators. The fold replicates
// Add comparison-for-comparison — including NaN behaviour and the
// deterministic minby/maxby tie-break, which for payload kinds reduces to a
// plain float compare (value.Compare orders those kinds by payload) — so a
// batch fold is bit-identical to the equivalent sequence of Add calls.
// It supports every combinator whose attribute kind has a columnar payload;
// SetUnion (whose contributions are sets) is the caller's responsibility to
// avoid.
func (a *Accumulator) AddPayloads(vals, keys []float64) {
	switch a.kind {
	case Sum, Avg:
		for _, v := range vals {
			a.num += v
		}
	case Min:
		for _, v := range vals {
			if a.n == 0 || v < a.num {
				a.num = v
			}
			a.n++
		}
		return
	case Max:
		for _, v := range vals {
			if a.n == 0 || v > a.num {
				a.num = v
			}
			a.n++
		}
		return
	case Count:
	case And:
		for _, v := range vals {
			if a.n == 0 {
				a.num = 1
			}
			if v == 0 {
				a.num = 0
			}
			a.n++
		}
		return
	case Or:
		for _, v := range vals {
			if v != 0 {
				a.num = 1
			}
			a.n++
		}
		return
	case MinBy:
		for i, v := range vals {
			key := keys[i]
			if a.n == 0 || key < a.key || (key == a.key && v < a.val.AsNumber()) {
				a.key, a.val = key, payloadValue(a.attrK, v)
			}
			a.n++
		}
		return
	case MaxBy:
		for i, v := range vals {
			key := keys[i]
			if a.n == 0 || key > a.key || (key == a.key && v < a.val.AsNumber()) {
				a.key, a.val = key, payloadValue(a.attrK, v)
			}
			a.n++
		}
		return
	case SetUnion:
		panic("combinator: AddPayloads on a set-union accumulator")
	}
	a.n += int64(len(vals))
}

// AddPayload folds one contribution given as its raw column payload — the
// single-element form of AddPayloads, with the same bit-identical contract
// against Add. The fused emission path uses it to fold kernel outputs
// without boxing a value.Value per row.
func (a *Accumulator) AddPayload(v, key float64) {
	switch a.kind {
	case Sum, Avg:
		a.num += v
	case Min:
		if a.n == 0 || v < a.num {
			a.num = v
		}
	case Max:
		if a.n == 0 || v > a.num {
			a.num = v
		}
	case Count:
	case And:
		if a.n == 0 {
			a.num = 1
		}
		if v == 0 {
			a.num = 0
		}
	case Or:
		if v != 0 {
			a.num = 1
		}
	case MinBy:
		if a.n == 0 || key < a.key || (key == a.key && v < a.val.AsNumber()) {
			a.key, a.val = key, payloadValue(a.attrK, v)
		}
	case MaxBy:
		if a.n == 0 || key > a.key || (key == a.key && v < a.val.AsNumber()) {
			a.key, a.val = key, payloadValue(a.attrK, v)
		}
	case SetUnion:
		panic("combinator: AddPayload on a set-union accumulator")
	}
	a.n++
}

// AddPayloadRows folds one kernel output batch into an effect column: for
// every masked row r in [lo, hi) it appends r to *touched when the
// accumulator is empty (the caller's first-contribution bookkeeping) and
// then folds vals[r] exactly as AddPayload would, with the combinator
// dispatch hoisted out of the row loop. keys carries minby/maxby selection
// keys and may be nil for other combinators. All accumulators in acc must
// share one combinator (they are one effect column). Bit-identical to the
// equivalent per-row AddPayload sequence.
func AddPayloadRows(acc []Accumulator, mask []bool, lo, hi int, vals, keys []float64, touched *[]int) {
	if hi <= lo {
		return
	}
	t := *touched
	switch acc[lo].kind {
	case Sum, Avg:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
			}
			a.num += vals[r]
			a.n++
		}
	case Min:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
				a.num = vals[r]
			} else if vals[r] < a.num {
				a.num = vals[r]
			}
			a.n++
		}
	case Max:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
				a.num = vals[r]
			} else if vals[r] > a.num {
				a.num = vals[r]
			}
			a.n++
		}
	case Count:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
			}
			a.n++
		}
	case And:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
				a.num = 1
			}
			if vals[r] == 0 {
				a.num = 0
			}
			a.n++
		}
	case Or:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
			}
			if vals[r] != 0 {
				a.num = 1
			}
			a.n++
		}
	case MinBy:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
			}
			if a.n == 0 || keys[r] < a.key || (keys[r] == a.key && vals[r] < a.val.AsNumber()) {
				a.key, a.val = keys[r], payloadValue(a.attrK, vals[r])
			}
			a.n++
		}
	case MaxBy:
		for r := lo; r < hi; r++ {
			if !mask[r] {
				continue
			}
			a := &acc[r]
			if a.n == 0 {
				t = append(t, r)
			}
			if a.n == 0 || keys[r] > a.key || (keys[r] == a.key && vals[r] < a.val.AsNumber()) {
				a.key, a.val = keys[r], payloadValue(a.attrK, vals[r])
			}
			a.n++
		}
	case SetUnion:
		panic("combinator: AddPayloadRows on a set-union accumulator")
	}
	*touched = t
}

// ResultPayload returns the combined value as a raw column payload, for
// accumulators whose result kind has one (callers guarantee that; it is
// exactly payloadOf(Result()) without the boxing). The second result is
// false when no contribution arrived.
func (a *Accumulator) ResultPayload() (float64, bool) {
	if a.n == 0 {
		return 0, false
	}
	switch a.kind {
	case Sum, Min, Max:
		return a.num, true
	case Avg:
		return a.num / float64(a.n), true
	case Count:
		return float64(a.n), true
	case And, Or:
		if a.num != 0 {
			return 1, true
		}
		return 0, true
	case MinBy, MaxBy:
		switch a.val.Kind() {
		case value.KindBool:
			if a.val.AsBool() {
				return 1, true
			}
			return 0, true
		case value.KindRef:
			return float64(a.val.AsRef()), true
		default:
			return a.val.AsNumber(), true
		}
	default:
		return 0, false
	}
}

// ResultPayloads writes acc[r]'s payload result into out[r] for every row
// in rows that received contributions — the bulk form of ResultPayload
// with the combinator dispatch hoisted out of the row loop. All
// accumulators in acc must share one combinator (they are one effect
// column); rows with no contributions leave out[r] untouched.
func ResultPayloads(acc []Accumulator, rows []int, out []float64) {
	if len(rows) == 0 {
		return
	}
	switch acc[rows[0]].kind {
	case Sum, Min, Max:
		for _, r := range rows {
			if a := &acc[r]; a.n > 0 {
				out[r] = a.num
			}
		}
	case Avg:
		for _, r := range rows {
			if a := &acc[r]; a.n > 0 {
				out[r] = a.num / float64(a.n)
			}
		}
	case Count:
		for _, r := range rows {
			if a := &acc[r]; a.n > 0 {
				out[r] = float64(a.n)
			}
		}
	case And, Or:
		for _, r := range rows {
			if a := &acc[r]; a.n > 0 {
				if a.num != 0 {
					out[r] = 1
				} else {
					out[r] = 0
				}
			}
		}
	default:
		for _, r := range rows {
			if p, ok := acc[r].ResultPayload(); ok {
				out[r] = p
			}
		}
	}
}

// ResetRows resets acc[r] for every row in rows — the bulk form of Reset
// with the combinator dispatch hoisted out of the row loop. All
// accumulators in acc must share one combinator.
func ResetRows(acc []Accumulator, rows []int) {
	if len(rows) == 0 {
		return
	}
	switch acc[rows[0]].kind {
	case MinBy, MaxBy, SetUnion:
		for _, r := range rows {
			a := &acc[r]
			a.n, a.num, a.key = 0, 0, 0
			a.val = value.Value{}
			a.set = nil
		}
	default:
		for _, r := range rows {
			a := &acc[r]
			a.n, a.num, a.key = 0, 0, 0
		}
	}
}

// payloadValue reconstructs a scalar value of kind k from its column
// payload.
func payloadValue(k value.Kind, f float64) value.Value {
	switch k {
	case value.KindBool:
		return value.Bool(f != 0)
	case value.KindRef:
		return value.Ref(value.ID(f))
	default:
		return value.Num(f)
	}
}

// Merge folds another partial accumulation of the same combinator into a.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	switch a.kind {
	case Sum, Avg:
		a.num += b.num
	case Min:
		if b.num < a.num {
			a.num = b.num
		}
	case Max:
		if b.num > a.num {
			a.num = b.num
		}
	case Count:
	case And:
		if b.num == 0 {
			a.num = 0
		}
	case Or:
		if b.num != 0 {
			a.num = 1
		}
	case MinBy:
		if b.key < a.key || (b.key == a.key && b.val.Compare(a.val) < 0) {
			a.key, a.val = b.key, b.val
		}
	case MaxBy:
		if b.key > a.key || (b.key == a.key && b.val.Compare(a.val) < 0) {
			a.key, a.val = b.key, b.val
		}
	case SetUnion:
		if a.set == nil {
			a.set = value.NewSet()
		}
		if b.set != nil {
			for _, e := range b.set.Elems() {
				a.set.Add(e)
			}
		}
	}
	a.n += b.n
}

// Result returns the combined value and whether any contribution arrived.
// With no contributions the second result is false and the first is the
// zero value of the result kind.
func (a *Accumulator) Result() (value.Value, bool) {
	if a.n == 0 {
		return value.Zero(a.kind.ResultKind(a.attrK)), false
	}
	switch a.kind {
	case Sum, Min, Max:
		return value.Num(a.num), true
	case Avg:
		return value.Num(a.num / float64(a.n)), true
	case Count:
		return value.Num(float64(a.n)), true
	case And, Or:
		return value.Bool(a.num != 0), true
	case MinBy, MaxBy:
		return a.val, true
	case SetUnion:
		if a.set == nil {
			return value.SetVal(value.NewSet()), true
		}
		return value.SetVal(a.set.Clone()), true
	default:
		return value.Value{}, false
	}
}

// N returns the number of contributions folded so far.
func (a *Accumulator) N() int64 { return a.n }

// Remove undoes a prior Add. Only the invertible combinators (sum, avg,
// count) support removal; it returns false otherwise. Transaction rollback
// (§3.1) relies on this, which is why the language requires additive
// effects inside atomic blocks.
func (a *Accumulator) Remove(v value.Value, key float64) bool {
	switch a.kind {
	case Sum, Avg:
		a.num -= v.AsNumber()
	case Count:
		// payload ignored
	default:
		return false
	}
	a.n--
	return true
}

// Reset empties the accumulator for reuse, preserving kind information.
// Only the combinators that carry a boxed payload or a set clear those
// fields — the others never write them, and skipping the stores keeps the
// per-row reset sweep free of pointer write barriers.
func (a *Accumulator) Reset() {
	a.n, a.num, a.key = 0, 0, 0
	switch a.kind {
	case MinBy, MaxBy, SetUnion:
		a.val = value.Value{}
		a.set = nil
	}
}

// Identity returns the identity element of the combinator where one exists
// (Sum→0, Min→+inf, Max→-inf, Count→0, And→true, Or→false, SetUnion→{}).
// Avg, MinBy and MaxBy have no identity; the second result is false.
func (k Kind) Identity() (value.Value, bool) {
	switch k {
	case Sum, Count:
		return value.Num(0), true
	case Min:
		return value.Num(math.Inf(1)), true
	case Max:
		return value.Num(math.Inf(-1)), true
	case And:
		return value.Bool(true), true
	case Or:
		return value.Bool(false), true
	case SetUnion:
		return value.SetVal(value.NewSet()), true
	default:
		return value.Value{}, false
	}
}
