// Package debug implements the debugging substrate of §3.3. SGL is
// data-parallel — the same script runs for thousands of NPCs per tick — so
// print-debugging is useless and the paper asks instead for:
//
//   - inspection of state attributes at tick boundaries, via the mapping
//     between relation columns and SGL attributes (Dump, Watch);
//   - logging with resumable checkpoints (Logger, Recorder, SaveCheckpoint);
//   - selecting an individual NPC and viewing the effects assigned to it
//     (TraceNPC).
package debug

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/value"
)

// Dump renders all live objects of a class at a tick boundary: one row per
// object, one column per SGL state attribute — the column↔attribute mapping
// the paper calls "fairly easy" and indispensable.
func Dump(w *engine.World, class string) string {
	cls, ok := w.Schema().Class(class)
	if !ok {
		return fmt.Sprintf("debug: unknown class %q\n", class)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (tick %d, %d objects) ==\n", class, w.Tick(), w.Count(class))
	names := make([]string, len(cls.State))
	for i, a := range cls.State {
		names[i] = a.Name
	}
	fmt.Fprintf(&b, "%8s | %s\n", "id", strings.Join(names, " | "))
	for _, id := range w.IDs(class) {
		cells := make([]string, len(cls.State))
		for i, a := range cls.State {
			v, _ := w.Get(class, id, a.Name)
			cells[i] = v.String()
		}
		fmt.Fprintf(&b, "%8d | %s\n", id, strings.Join(cells, " | "))
	}
	return b.String()
}

// Watch reads a set of attributes for one object, for assertions in test
// scenarios and REPL-style inspection.
func Watch(w *engine.World, class string, id value.ID, attrs ...string) map[string]value.Value {
	out := make(map[string]value.Value, len(attrs))
	for _, a := range attrs {
		if v, ok := w.Get(class, id, a); ok {
			out[a] = v
		}
	}
	return out
}

// Logger is an engine.Inspector writing one summary line per tick.
type Logger struct {
	W io.Writer
	// Classes restricts the summary; empty logs every class.
	Classes []string
}

// NewLogger logs to w (os.Stderr when nil).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		w = os.Stderr
	}
	return &Logger{W: w}
}

// TickStart implements engine.Inspector.
func (l *Logger) TickStart(w *engine.World, tick int64) {}

// TickEnd implements engine.Inspector.
func (l *Logger) TickEnd(w *engine.World, tick int64) {
	classes := l.Classes
	if len(classes) == 0 {
		for _, c := range w.Schema().Classes() {
			classes = append(classes, c.Name)
		}
	}
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, w.Count(c)))
	}
	fmt.Fprintf(l.W, "tick %d: %s\n", tick, strings.Join(parts, " "))
}

// TraceEvent is one observed effect emission.
type TraceEvent struct {
	Tick     int64
	SrcClass string
	Src      value.ID
	DstClass string
	Dst      value.ID
	Attr     string
	Val      value.Value
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("tick %d: %s#%d -> %s#%d.%s <- %s",
		e.Tick, e.SrcClass, e.Src, e.DstClass, e.Dst, e.Attr, e.Val)
}

// NPCTrace records every effect assigned to (or emitted by) one object —
// the per-NPC view the paper lists among its desiderata. Install with
// w.SetTracer(trace.Fn()).
type NPCTrace struct {
	ID     value.ID
	Events []TraceEvent
	// IncludeOutgoing also records emissions the NPC makes to others.
	IncludeOutgoing bool
}

// Fn returns the engine.TraceFn to install.
func (t *NPCTrace) Fn() engine.TraceFn {
	return func(tick int64, srcClass string, src value.ID, dstClass string, dst value.ID, attr string, v value.Value) {
		if dst == t.ID || (t.IncludeOutgoing && src == t.ID) {
			t.Events = append(t.Events, TraceEvent{
				Tick: tick, SrcClass: srcClass, Src: src,
				DstClass: dstClass, Dst: dst, Attr: attr, Val: v,
			})
		}
	}
}

// Recorder keeps periodic checkpoints in memory so a session can rewind —
// "logging, including resumable checkpoints".
type Recorder struct {
	Every int // checkpoint period in ticks (default 10)
	snaps []*engine.Checkpoint
	err   error
}

// NewRecorder checkpoints every n ticks.
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 10
	}
	return &Recorder{Every: n}
}

// TickStart implements engine.Inspector.
func (r *Recorder) TickStart(w *engine.World, tick int64) {}

// TickEnd implements engine.Inspector. It snapshots at tick boundaries
// (every r.Every completed ticks), where the engine permits checkpoints.
func (r *Recorder) TickEnd(w *engine.World, tick int64) {
	if w.Tick()%int64(r.Every) != 0 {
		return
	}
	c, err := w.Checkpoint()
	if err != nil {
		r.err = err
		return
	}
	r.snaps = append(r.snaps, c)
}

// Err returns the first checkpoint error, if any.
func (r *Recorder) Err() error { return r.err }

// Checkpoints returns the recorded snapshots in tick order.
func (r *Recorder) Checkpoints() []*engine.Checkpoint { return r.snaps }

// Rewind restores the latest checkpoint at or before tick. It returns the
// restored tick, or an error when none qualifies.
func (r *Recorder) Rewind(w *engine.World, tick int64) (int64, error) {
	var best *engine.Checkpoint
	for _, c := range r.snaps {
		if c.Tick <= tick && (best == nil || c.Tick > best.Tick) {
			best = c
		}
	}
	if best == nil {
		return 0, fmt.Errorf("debug: no checkpoint at or before tick %d", tick)
	}
	if err := w.Restore(best); err != nil {
		return 0, err
	}
	return best.Tick, nil
}

// SaveCheckpoint writes a checkpoint as JSON.
func SaveCheckpoint(w io.Writer, c *engine.Checkpoint) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// LoadCheckpoint reads a JSON checkpoint.
func LoadCheckpoint(r io.Reader) (*engine.Checkpoint, error) {
	var c engine.Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// DiffStates compares the same class across two worlds (e.g. engine vs
// baseline) and reports mismatching (id, attr) pairs — the tool behind the
// equivalence property tests.
func DiffStates(a, b stateReader, class string, attrs []string, eps float64) []string {
	var diffs []string
	ids := a.IDs(class)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, attr := range attrs {
			av, aok := a.Get(class, id, attr)
			bv, bok := b.Get(class, id, attr)
			if aok != bok {
				diffs = append(diffs, fmt.Sprintf("%s#%d.%s: presence %v vs %v", class, id, attr, aok, bok))
				continue
			}
			if !aok {
				continue
			}
			if av.Kind() == value.KindNumber && bv.Kind() == value.KindNumber {
				if !value.NumbersEqual(av.AsNumber(), bv.AsNumber(), eps) {
					diffs = append(diffs, fmt.Sprintf("%s#%d.%s: %v vs %v", class, id, attr, av, bv))
				}
			} else if !av.Equal(bv) {
				diffs = append(diffs, fmt.Sprintf("%s#%d.%s: %v vs %v", class, id, attr, av, bv))
			}
		}
	}
	return diffs
}

// stateReader is the read surface shared by engine and baseline worlds.
type stateReader interface {
	IDs(class string) []value.ID
	Get(class string, id value.ID, attr string) (value.Value, bool)
}
