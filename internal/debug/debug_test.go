package debug_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/engine"
	"repro/internal/value"
)

func guardWorld(t *testing.T) *engine.World {
	t.Helper()
	sc, err := core.LoadScenario("guard", core.SrcGuard)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sc.NewWorld(engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDump(t *testing.T) {
	w := guardWorld(t)
	w.Spawn("Guard", map[string]value.Value{"px": value.Num(3)})
	w.Spawn("Guard", map[string]value.Value{"px": value.Num(7)})
	out := debug.Dump(w, "Guard")
	for _, want := range []string{"Guard", "px", "health", "100", "2 objects"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	if got := debug.Dump(w, "Nope"); !strings.Contains(got, "unknown class") {
		t.Error("unknown class dump")
	}
}

func TestWatch(t *testing.T) {
	w := guardWorld(t)
	id, _ := w.Spawn("Guard", map[string]value.Value{"px": value.Num(5)})
	got := debug.Watch(w, "Guard", id, "px", "health", "bogus")
	if got["px"].AsNumber() != 5 || got["health"].AsNumber() != 100 {
		t.Errorf("Watch = %v", got)
	}
	if _, ok := got["bogus"]; ok {
		t.Error("unknown attrs must be omitted")
	}
}

func TestLogger(t *testing.T) {
	w := guardWorld(t)
	w.Spawn("Guard", nil)
	var buf bytes.Buffer
	w.AddInspector(&debug.Logger{W: &buf})
	w.Run(2)
	out := buf.String()
	if !strings.Contains(out, "tick 0: Guard=1") || !strings.Contains(out, "tick 1:") {
		t.Errorf("log output:\n%s", out)
	}
}

func TestNPCTrace(t *testing.T) {
	w := guardWorld(t)
	a, _ := w.Spawn("Guard", nil)
	b, _ := w.Spawn("Guard", nil)
	w.SetState("Guard", a, "foe", value.Ref(b))
	trace := &debug.NPCTrace{ID: b}
	w.SetTracer(trace.Fn())
	// Phase 2 (attack) happens on tick 3.
	w.Run(3)
	if len(trace.Events) == 0 {
		t.Fatal("no events traced for the attacked NPC")
	}
	ev := trace.Events[len(trace.Events)-1]
	if ev.Dst != b || ev.Attr != "damage" || ev.Src != a {
		t.Errorf("event = %+v", ev)
	}
	if !strings.Contains(ev.String(), "damage") {
		t.Error("event String")
	}
	// Self-movement effects (dx/dy) by other NPCs must not be captured.
	for _, e := range trace.Events {
		if e.Dst != b {
			t.Errorf("captured foreign event: %+v", e)
		}
	}
}

func TestRecorderAndRewind(t *testing.T) {
	w := guardWorld(t)
	id, _ := w.Spawn("Guard", map[string]value.Value{"px": value.Num(10), "py": value.Num(0)})
	rec := debug.NewRecorder(2)
	w.AddInspector(rec)
	w.Run(6)
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if len(rec.Checkpoints()) != 3 { // after ticks 2, 4, 6
		t.Fatalf("checkpoints = %d", len(rec.Checkpoints()))
	}
	xAt6 := w.MustGet("Guard", id, "x").AsNumber()
	tick, err := rec.Rewind(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tick != 4 || w.Tick() != 4 {
		t.Fatalf("rewound to %d (world %d)", tick, w.Tick())
	}
	// Re-running the remaining ticks reproduces the trajectory.
	w.Run(2)
	if got := w.MustGet("Guard", id, "x").AsNumber(); got != xAt6 {
		t.Fatalf("replay diverged: %v vs %v", got, xAt6)
	}
	if _, err := rec.Rewind(w, 1); err == nil {
		t.Error("rewind before the first checkpoint must fail")
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	w := guardWorld(t)
	id, _ := w.Spawn("Guard", map[string]value.Value{"px": value.Num(4)})
	w.Run(3)
	cp, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := debug.SaveCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := debug.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w2 := guardWorld(t)
	// Same schema: restore into a fresh world.
	if err := w2.Restore(loaded); err != nil {
		t.Fatal(err)
	}
	if w2.Tick() != 3 {
		t.Errorf("tick = %d", w2.Tick())
	}
	a := w.MustGet("Guard", id, "x").AsNumber()
	b := w2.MustGet("Guard", id, "x").AsNumber()
	if a != b {
		t.Errorf("restored x = %v, want %v", b, a)
	}
	// Both continue identically (checkpoint is resumable, §3.3).
	w.Run(2)
	w2.Run(2)
	if w.MustGet("Guard", id, "x").AsNumber() != w2.MustGet("Guard", id, "x").AsNumber() {
		t.Error("resumed runs diverged")
	}
}

func TestDiffStates(t *testing.T) {
	sc, _ := core.LoadScenario("fig2", core.SrcFig2)
	a, _ := sc.NewWorld(engine.Options{})
	b := sc.NewBaseline()
	ia, _ := a.Spawn("Unit", map[string]value.Value{"x": value.Num(1)})
	b.Spawn("Unit", map[string]value.Value{"x": value.Num(1)})
	if diffs := debug.DiffStates(a, b, "Unit", []string{"x", "health"}, 1e-9); len(diffs) != 0 {
		t.Fatalf("identical worlds diff: %v", diffs)
	}
	a.SetState("Unit", ia, "x", value.Num(99))
	if diffs := debug.DiffStates(a, b, "Unit", []string{"x"}, 1e-9); len(diffs) != 1 {
		t.Fatalf("diff not detected: %v", diffs)
	}
}
