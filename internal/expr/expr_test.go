package expr_test

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

// testEnv compiles expressions in the context of a small class and
// evaluates them against an in-memory row.
type testEnv struct {
	info  *sem.Info
	state []value.Value
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	src := `
class E {
  state:
    number x = 0;
    number y = 0;
    bool flag = false;
    string name = "";
    ref<E> friend = null;
    set<number> bag;
}
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{info: info}
}

type sliceReader []value.Value

func (s sliceReader) Attr(i int) value.Value { return s[i] }

type nilWorld struct{}

func (nilWorld) StateValue(class string, id value.ID, attrIdx int) (value.Value, bool) {
	return value.Value{}, false
}

func (e *testEnv) eval(t *testing.T, src string) value.Value {
	t.Helper()
	ex, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if _, err := e.info.AnalyzeExpr("E", ex); err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	fn := expr.Compile(ex)
	state := e.state
	if state == nil {
		state = []value.Value{
			value.Num(3), value.Num(4), value.Bool(true), value.Str("bob"),
			value.NullRef(), value.SetVal(value.NewSet(value.Num(1), value.Num(2))),
		}
	}
	ctx := expr.Ctx{
		W: nilWorld{}, Class: "E", SelfID: 7, Self: sliceReader(state),
	}
	return fn(&ctx)
}

func TestArithmetic(t *testing.T) {
	env := newEnv(t)
	cases := map[string]float64{
		"1 + 2 * 3":        7,
		"(1 + 2) * 3":      9,
		"10 / 4":           2.5,
		"7 % 3":            1,
		"-x":               -3,
		"x + y":            7,
		"x - y":            -1,
		"abs(0 - 5)":       5,
		"min(x, y)":        3,
		"max(x, y)":        4,
		"floor(2.9)":       2,
		"ceil(2.1)":        3,
		"sqrt(16)":         4,
		"clamp(10, 0, 5)":  5,
		"clamp(-1, 0, 5)":  0,
		"dist(0, 0, 3, 4)": 5,
	}
	for src, want := range cases {
		if got := env.eval(t, src).AsNumber(); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
	if got := env.eval(t, "1 / 0").AsNumber(); !math.IsInf(got, 1) {
		t.Errorf("1/0 = %v, want +Inf (IEEE total semantics)", got)
	}
}

func TestLogicAndComparison(t *testing.T) {
	env := newEnv(t)
	cases := map[string]bool{
		"x < y":                true,
		"x >= y":               false,
		"x == 3":               true,
		"x != 3":               false,
		"flag && x > 0":        true,
		"!flag || x > 100":     false,
		"name == \"bob\"":      true,
		"name < \"zed\"":       true,
		"friend == null":       true,
		"friend != null":       false,
		"contains(bag, 2)":     true,
		"contains(bag, 9)":     false,
		"size(bag) == 2":       true,
		"x > 0 ? flag : !flag": true,
	}
	for src, want := range cases {
		if got := env.eval(t, src).AsBool(); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	env := newEnv(t)
	// friend is null: friend.x would read through null, which yields zero
	// rather than failing — but && must not even matter here.
	if got := env.eval(t, "friend != null && friend.x > 0").AsBool(); got {
		t.Error("short-circuit and")
	}
	if got := env.eval(t, "friend == null || friend.x > 0").AsBool(); !got {
		t.Error("short-circuit or")
	}
}

func TestNullAndDanglingReads(t *testing.T) {
	env := newEnv(t)
	// Reading through a null ref yields the zero value of the attr type.
	if got := env.eval(t, "friend.x").AsNumber(); got != 0 {
		t.Errorf("null.x = %v", got)
	}
	if got := env.eval(t, "friend.name").AsString(); got != "" {
		t.Errorf("null.name = %q", got)
	}
	// Dangling (non-null id unknown to the world) also reads zero.
	env.state = []value.Value{
		value.Num(3), value.Num(4), value.Bool(true), value.Str("bob"),
		value.Ref(999), value.SetVal(value.NewSet()),
	}
	if got := env.eval(t, "friend.y").AsNumber(); got != 0 {
		t.Errorf("dangling.y = %v", got)
	}
}

func TestSelfBuiltins(t *testing.T) {
	env := newEnv(t)
	if got := env.eval(t, "id(self())").AsNumber(); got != 7 {
		t.Errorf("id(self()) = %v", got)
	}
	if got := env.eval(t, "self() == self()").AsBool(); !got {
		t.Error("self equality")
	}
}

func TestEffectReads(t *testing.T) {
	src := `
class F {
  state:
    number hp = 10;
  effects:
    number dmg : sum;
    number boost : max;
  update:
    hp = hp - dmg + boost;
}
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	rule := info.Program.Classes[0].Updates[0]
	fn := expr.Compile(rule.Expr)
	ctx := expr.Ctx{
		W: nilWorld{}, Class: "F", SelfID: 1,
		Self:       sliceReader([]value.Value{value.Num(10)}),
		Effects:    fakeFx{present: map[int]value.Value{0: value.Num(3)}},
		EffectZero: func(i int) value.Value { return value.Num(0) },
	}
	// dmg present (3), boost absent (zero): 10 - 3 + 0 = 7.
	if got := fn(&ctx).AsNumber(); got != 7 {
		t.Errorf("rule = %v, want 7", got)
	}
}

type fakeFx struct{ present map[int]value.Value }

func (f fakeFx) EffectValue(i int) (value.Value, bool) {
	v, ok := f.present[i]
	return v, ok
}

func TestCompilePanicsOnUnresolved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("compiling an unresolved identifier must panic")
		}
	}()
	expr.Compile(&ast.Ident{Name: "loose"})
}
