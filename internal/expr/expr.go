// Package expr compiles type-checked SGL expressions into evaluation
// closures shared by the set-at-a-time engine, the transaction constraint
// checker, the reactive handler evaluator and the object-at-a-time baseline
// interpreter. One evaluator means the paper's two processing models can be
// compared on identical semantics.
//
// Evaluation is total: SGL has no runtime exceptions. Division follows IEEE
// (x/0 = ±Inf), reads through null or dangling references yield the zero
// value of the attribute type, and an effect attribute that received no
// contributions reads (in update rules) as the zero value of its combined
// kind.
package expr

import (
	"fmt"
	"math"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// RowReader provides fast access to the executing object's state attributes
// by index.
type RowReader interface {
	Attr(attrIdx int) value.Value
}

// World resolves cross-object reads. Implementations decide which snapshot
// is visible: the engine serves tick-start state during the query/effect
// phases, and tentative state during transaction admission.
type World interface {
	// StateValue reads a state attribute of any live object. The second
	// result is false for dangling or null references.
	StateValue(class string, id value.ID, attrIdx int) (value.Value, bool)
}

// EffectReader serves combined effect values during the update step.
type EffectReader interface {
	// EffectValue returns the ⊕-combined value of an effect attribute of
	// the executing object; ok is false when no contribution arrived.
	EffectValue(attrIdx int) (value.Value, bool)
}

// Ctx is the evaluation context for one object. Reuse a single Ctx across
// rows by mutating its fields; compiled closures never retain it.
type Ctx struct {
	W       World
	Class   string    // class of the executing object
	SelfID  value.ID  // id of the executing object
	Self    RowReader // state attributes of the executing object
	Frame   []value.Value
	Effects EffectReader // non-nil only while evaluating update rules

	// EffectKinds maps effect attr index to the zero value kind used when
	// reading an effect that received no contributions. Set by the engine
	// for update-rule evaluation.
	EffectZero func(attrIdx int) value.Value
}

// Fn is a compiled expression.
type Fn func(ctx *Ctx) value.Value

// Compile translates a type-checked expression into a closure. It panics on
// unresolved nodes, which indicates a semantic-analysis bug rather than a
// user error.
func Compile(e ast.Expr) Fn {
	switch e := e.(type) {
	case *ast.NumLit:
		v := value.Num(e.V)
		return func(*Ctx) value.Value { return v }
	case *ast.BoolLit:
		v := value.Bool(e.V)
		return func(*Ctx) value.Value { return v }
	case *ast.StrLit:
		v := value.Str(e.V)
		return func(*Ctx) value.Value { return v }
	case *ast.NullLit:
		return func(*Ctx) value.Value { return value.NullRef() }
	case *ast.Ident:
		return compileIdent(e)
	case *ast.FieldExpr:
		return compileField(e)
	case *ast.UnaryExpr:
		return compileUnary(e)
	case *ast.BinaryExpr:
		return compileBinary(e)
	case *ast.CondExpr:
		c, t, f := Compile(e.C), Compile(e.T), Compile(e.F)
		return func(ctx *Ctx) value.Value {
			if c(ctx).AsBool() {
				return t(ctx)
			}
			return f(ctx)
		}
	case *ast.CallExpr:
		return compileCall(e)
	default:
		panic(fmt.Sprintf("expr: cannot compile %T", e))
	}
}

func compileIdent(e *ast.Ident) Fn {
	switch e.Bind.Kind {
	case ast.BindStateAttr:
		idx := e.Bind.AttrIdx
		return func(ctx *Ctx) value.Value { return ctx.Self.Attr(idx) }
	case ast.BindLocal, ast.BindIter:
		slot := e.Bind.Slot
		return func(ctx *Ctx) value.Value { return ctx.Frame[slot] }
	case ast.BindSelf:
		return func(ctx *Ctx) value.Value { return value.Ref(ctx.SelfID) }
	case ast.BindEffectAttr:
		idx := e.Bind.AttrIdx
		return func(ctx *Ctx) value.Value {
			if v, ok := ctx.Effects.EffectValue(idx); ok {
				return v
			}
			return ctx.EffectZero(idx)
		}
	case ast.BindExtent:
		panic("expr: class extent used as a value (only valid as accum source)")
	default:
		panic(fmt.Sprintf("expr: unresolved identifier %q", e.Name))
	}
}

func compileField(e *ast.FieldExpr) Fn {
	x := Compile(e.X)
	class, idx := e.Class, e.AttrIdx
	zero := value.Zero(e.Ty.Kind)
	if e.Ty.Kind == value.KindRef {
		zero = value.NullRef()
	}
	return func(ctx *Ctx) value.Value {
		ref := x(ctx)
		if ref.IsNullRef() {
			return zero
		}
		if v, ok := ctx.W.StateValue(class, ref.AsRef(), idx); ok {
			return v
		}
		return zero
	}
}

func compileUnary(e *ast.UnaryExpr) Fn {
	x := Compile(e.X)
	switch e.Op {
	case token.MINUS:
		return func(ctx *Ctx) value.Value { return value.Num(-x(ctx).AsNumber()) }
	case token.NOT:
		return func(ctx *Ctx) value.Value { return value.Bool(!x(ctx).AsBool()) }
	default:
		panic("expr: unknown unary operator")
	}
}

func compileBinary(e *ast.BinaryExpr) Fn {
	x, y := Compile(e.X), Compile(e.Y)
	switch e.Op {
	case token.PLUS:
		return func(ctx *Ctx) value.Value { return value.Num(x(ctx).AsNumber() + y(ctx).AsNumber()) }
	case token.MINUS:
		return func(ctx *Ctx) value.Value { return value.Num(x(ctx).AsNumber() - y(ctx).AsNumber()) }
	case token.STAR:
		return func(ctx *Ctx) value.Value { return value.Num(x(ctx).AsNumber() * y(ctx).AsNumber()) }
	case token.SLASH:
		return func(ctx *Ctx) value.Value { return value.Num(x(ctx).AsNumber() / y(ctx).AsNumber()) }
	case token.PERCENT:
		return func(ctx *Ctx) value.Value { return value.Num(math.Mod(x(ctx).AsNumber(), y(ctx).AsNumber())) }
	case token.LT:
		return compileCompare(e, x, y, func(c int) bool { return c < 0 })
	case token.LE:
		return compileCompare(e, x, y, func(c int) bool { return c <= 0 })
	case token.GT:
		return compileCompare(e, x, y, func(c int) bool { return c > 0 })
	case token.GE:
		return compileCompare(e, x, y, func(c int) bool { return c >= 0 })
	case token.EQ:
		return func(ctx *Ctx) value.Value { return value.Bool(x(ctx).Equal(y(ctx))) }
	case token.NEQ:
		return func(ctx *Ctx) value.Value { return value.Bool(!x(ctx).Equal(y(ctx))) }
	case token.ANDAND:
		return func(ctx *Ctx) value.Value {
			if !x(ctx).AsBool() {
				return value.Bool(false)
			}
			return value.Bool(y(ctx).AsBool())
		}
	case token.OROR:
		return func(ctx *Ctx) value.Value {
			if x(ctx).AsBool() {
				return value.Bool(true)
			}
			return value.Bool(y(ctx).AsBool())
		}
	default:
		panic("expr: unknown binary operator")
	}
}

func compileCompare(e *ast.BinaryExpr, x, y Fn, ok func(int) bool) Fn {
	if e.X.Type().Kind == value.KindNumber {
		// Fast path avoiding Value.Compare's kind switch.
		switch e.Op {
		case token.LT:
			return func(ctx *Ctx) value.Value { return value.Bool(x(ctx).AsNumber() < y(ctx).AsNumber()) }
		case token.LE:
			return func(ctx *Ctx) value.Value { return value.Bool(x(ctx).AsNumber() <= y(ctx).AsNumber()) }
		case token.GT:
			return func(ctx *Ctx) value.Value { return value.Bool(x(ctx).AsNumber() > y(ctx).AsNumber()) }
		case token.GE:
			return func(ctx *Ctx) value.Value { return value.Bool(x(ctx).AsNumber() >= y(ctx).AsNumber()) }
		}
	}
	return func(ctx *Ctx) value.Value { return value.Bool(ok(x(ctx).Compare(y(ctx)))) }
}

func compileCall(e *ast.CallExpr) Fn {
	args := make([]Fn, len(e.Args))
	for i, a := range e.Args {
		args[i] = Compile(a)
	}
	switch e.Builtin {
	case ast.BAbs:
		return func(ctx *Ctx) value.Value { return value.Num(math.Abs(args[0](ctx).AsNumber())) }
	case ast.BMin:
		return func(ctx *Ctx) value.Value {
			return value.Num(math.Min(args[0](ctx).AsNumber(), args[1](ctx).AsNumber()))
		}
	case ast.BMax:
		return func(ctx *Ctx) value.Value {
			return value.Num(math.Max(args[0](ctx).AsNumber(), args[1](ctx).AsNumber()))
		}
	case ast.BFloor:
		return func(ctx *Ctx) value.Value { return value.Num(math.Floor(args[0](ctx).AsNumber())) }
	case ast.BCeil:
		return func(ctx *Ctx) value.Value { return value.Num(math.Ceil(args[0](ctx).AsNumber())) }
	case ast.BSqrt:
		return func(ctx *Ctx) value.Value { return value.Num(math.Sqrt(args[0](ctx).AsNumber())) }
	case ast.BClamp:
		return func(ctx *Ctx) value.Value {
			x := args[0](ctx).AsNumber()
			lo := args[1](ctx).AsNumber()
			hi := args[2](ctx).AsNumber()
			return value.Num(math.Min(math.Max(x, lo), hi))
		}
	case ast.BDist:
		return func(ctx *Ctx) value.Value {
			dx := args[0](ctx).AsNumber() - args[2](ctx).AsNumber()
			dy := args[1](ctx).AsNumber() - args[3](ctx).AsNumber()
			return value.Num(math.Hypot(dx, dy))
		}
	case ast.BSize:
		return func(ctx *Ctx) value.Value { return value.Num(float64(args[0](ctx).AsSet().Len())) }
	case ast.BContains:
		return func(ctx *Ctx) value.Value {
			return value.Bool(args[0](ctx).AsSet().Contains(args[1](ctx)))
		}
	case ast.BID:
		return func(ctx *Ctx) value.Value { return value.Num(float64(args[0](ctx).AsRef())) }
	case ast.BSelfFn:
		return func(ctx *Ctx) value.Value { return value.Ref(ctx.SelfID) }
	default:
		panic(fmt.Sprintf("expr: unknown builtin in call to %q", e.Name))
	}
}
