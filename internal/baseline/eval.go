package baseline

import (
	"fmt"
	"math"

	"repro/internal/combinator"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// evalCtx interprets statements and expressions for one object, walking the
// AST directly — the per-NPC script-engine model the paper's middleware
// baseline represents.
type evalCtx struct {
	w     *World
	cb    *classBase
	id    value.ID
	obj   *object
	frame []value.Value

	accums map[int]*combinator.Accumulator // active accum slots
	curTxn *txn

	effects   bool // update-rule mode: effect attrs readable
	tentative bool // constraint mode: rule-bearing attrs replay their rule
}

func (ev *evalCtx) runStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.LetStmt:
			ev.frame[s.Slot] = ev.eval(s.Expr)
		case *ast.IfStmt:
			if ev.eval(s.Cond).AsBool() {
				ev.runStmts(s.Then.Stmts)
			} else if s.Else != nil {
				ev.runStmts(s.Else.Stmts)
			}
		case *ast.EffectAssign:
			ev.runEffectAssign(s)
		case *ast.AccumStmt:
			ev.runAccum(s)
		case *ast.AtomicStmt:
			t := &txn{
				class:       ev.cb.name,
				source:      ev.id,
				frame:       append([]value.Value(nil), ev.frame...),
				constraints: s.Constraints,
			}
			prev := ev.curTxn
			ev.curTxn = t
			ev.runStmts(s.Body.Stmts)
			ev.curTxn = prev
			if len(t.emissions) > 0 {
				ev.w.txns = append(ev.w.txns, t)
			}
		case *ast.WaitStmt:
			// Phases are pre-split; nothing to do.
		}
	}
}

func (ev *evalCtx) runEffectAssign(s *ast.EffectAssign) {
	val := ev.eval(s.Value)
	var key float64
	if s.Key != nil {
		key = ev.eval(s.Key).AsNumber()
	}
	if s.AccumSlot >= 0 {
		ev.accums[s.AccumSlot].Add(val, key)
		return
	}
	target := ev.id
	if s.Target != nil {
		ref := ev.eval(s.Target)
		if ref.IsNullRef() {
			return
		}
		target = ref.AsRef()
	}
	if ev.curTxn != nil {
		ev.curTxn.emissions = append(ev.curTxn.emissions, emission{
			class: s.TargetClass, target: target, attrIdx: s.AttrIdx, val: val, key: key,
		})
		return
	}
	cb := ev.w.classes[s.TargetClass]
	if o, ok := cb.objs[target]; ok {
		o.fx[s.AttrIdx].Add(val, key)
	}
}

func (ev *evalCtx) runAccum(s *ast.AccumStmt) {
	comb, _ := combinator.Parse(s.Comb)
	acc := combinator.New(comb, s.ValType.Kind)
	if ev.accums == nil {
		ev.accums = make(map[int]*combinator.Accumulator)
	}
	ev.accums[s.Slot] = &acc

	srcCB := ev.w.classes[s.IterClass]
	runOne := func(id value.ID) {
		ev.frame[s.IterSlot] = value.Ref(id)
		ev.runStmts(s.Body.Stmts)
	}
	if id, ok := s.Source.(*ast.Ident); ok && id.Bind.Kind == ast.BindExtent {
		// Naive object-at-a-time: scan the whole extent per NPC — the
		// O(n²) behaviour the set-at-a-time engine's index joins remove.
		for _, oid := range srcCB.order {
			runOne(oid)
		}
	} else {
		set := ev.eval(s.Source).AsSet()
		for _, e := range set.Elems() {
			if e.Kind() == value.KindRef {
				if _, ok := srcCB.objs[e.AsRef()]; ok {
					runOne(e.AsRef())
				}
			}
		}
	}
	delete(ev.accums, s.Slot)
	v, ok := acc.Result()
	if !ok {
		v = value.Zero(comb.ResultKind(s.ValType.Kind))
	}
	ev.frame[s.Slot] = v
	ev.runStmts(s.In.Stmts)
}

func (ev *evalCtx) eval(e ast.Expr) value.Value {
	switch e := e.(type) {
	case *ast.NumLit:
		return value.Num(e.V)
	case *ast.BoolLit:
		return value.Bool(e.V)
	case *ast.StrLit:
		return value.Str(e.V)
	case *ast.NullLit:
		return value.NullRef()
	case *ast.Ident:
		return ev.evalIdent(e)
	case *ast.FieldExpr:
		return ev.evalField(e)
	case *ast.UnaryExpr:
		x := ev.eval(e.X)
		if e.Op == token.MINUS {
			return value.Num(-x.AsNumber())
		}
		return value.Bool(!x.AsBool())
	case *ast.BinaryExpr:
		return ev.evalBinary(e)
	case *ast.CondExpr:
		if ev.eval(e.C).AsBool() {
			return ev.eval(e.T)
		}
		return ev.eval(e.F)
	case *ast.CallExpr:
		return ev.evalCall(e)
	default:
		panic(fmt.Sprintf("baseline: cannot evaluate %T", e))
	}
}

func (ev *evalCtx) evalIdent(e *ast.Ident) value.Value {
	switch e.Bind.Kind {
	case ast.BindStateAttr:
		return ev.stateOf(ev.cb, ev.id, ev.obj, e.Bind.AttrIdx)
	case ast.BindLocal, ast.BindIter:
		return ev.frame[e.Bind.Slot]
	case ast.BindSelf:
		return value.Ref(ev.id)
	case ast.BindEffectAttr:
		v, ok := ev.obj.fx[e.Bind.AttrIdx].Result()
		if !ok {
			a := ev.cb.cls.Effects[e.Bind.AttrIdx]
			return value.Zero(a.Comb.ResultKind(a.Kind))
		}
		return v
	default:
		panic(fmt.Sprintf("baseline: unresolved identifier %q", e.Name))
	}
}

// stateOf reads a state attribute, replaying the update rule in tentative
// (constraint) mode — mirroring engine.tentWorld.
func (ev *evalCtx) stateOf(cb *classBase, id value.ID, o *object, attrIdx int) value.Value {
	if !ev.tentative {
		return o.state[attrIdx]
	}
	name := cb.cls.State[attrIdx].Name
	for _, r := range cb.decl.Updates {
		if r.Attr != name {
			continue
		}
		sub := &evalCtx{w: ev.w, cb: cb, id: id, obj: o, effects: true}
		return sub.eval(r.Expr)
	}
	return o.state[attrIdx]
}

func (ev *evalCtx) evalField(e *ast.FieldExpr) value.Value {
	ref := ev.eval(e.X)
	zero := value.Zero(e.Ty.Kind)
	if e.Ty.Kind == value.KindRef {
		zero = value.NullRef()
	}
	if ref.IsNullRef() {
		return zero
	}
	cb := ev.w.classes[e.Class]
	o, ok := cb.objs[ref.AsRef()]
	if !ok {
		return zero
	}
	return ev.stateOf(cb, ref.AsRef(), o, e.AttrIdx)
}

func (ev *evalCtx) evalBinary(e *ast.BinaryExpr) value.Value {
	switch e.Op {
	case token.ANDAND:
		if !ev.eval(e.X).AsBool() {
			return value.Bool(false)
		}
		return value.Bool(ev.eval(e.Y).AsBool())
	case token.OROR:
		if ev.eval(e.X).AsBool() {
			return value.Bool(true)
		}
		return value.Bool(ev.eval(e.Y).AsBool())
	}
	x, y := ev.eval(e.X), ev.eval(e.Y)
	switch e.Op {
	case token.PLUS:
		return value.Num(x.AsNumber() + y.AsNumber())
	case token.MINUS:
		return value.Num(x.AsNumber() - y.AsNumber())
	case token.STAR:
		return value.Num(x.AsNumber() * y.AsNumber())
	case token.SLASH:
		return value.Num(x.AsNumber() / y.AsNumber())
	case token.PERCENT:
		return value.Num(math.Mod(x.AsNumber(), y.AsNumber()))
	case token.EQ:
		return value.Bool(x.Equal(y))
	case token.NEQ:
		return value.Bool(!x.Equal(y))
	case token.LT:
		return value.Bool(x.Compare(y) < 0)
	case token.LE:
		return value.Bool(x.Compare(y) <= 0)
	case token.GT:
		return value.Bool(x.Compare(y) > 0)
	case token.GE:
		return value.Bool(x.Compare(y) >= 0)
	default:
		panic("baseline: unknown binary operator")
	}
}

func (ev *evalCtx) evalCall(e *ast.CallExpr) value.Value {
	arg := func(i int) value.Value { return ev.eval(e.Args[i]) }
	switch e.Builtin {
	case ast.BAbs:
		return value.Num(math.Abs(arg(0).AsNumber()))
	case ast.BMin:
		return value.Num(math.Min(arg(0).AsNumber(), arg(1).AsNumber()))
	case ast.BMax:
		return value.Num(math.Max(arg(0).AsNumber(), arg(1).AsNumber()))
	case ast.BFloor:
		return value.Num(math.Floor(arg(0).AsNumber()))
	case ast.BCeil:
		return value.Num(math.Ceil(arg(0).AsNumber()))
	case ast.BSqrt:
		return value.Num(math.Sqrt(arg(0).AsNumber()))
	case ast.BClamp:
		return value.Num(math.Min(math.Max(arg(0).AsNumber(), arg(1).AsNumber()), arg(2).AsNumber()))
	case ast.BDist:
		return value.Num(math.Hypot(arg(0).AsNumber()-arg(2).AsNumber(), arg(1).AsNumber()-arg(3).AsNumber()))
	case ast.BSize:
		return value.Num(float64(arg(0).AsSet().Len()))
	case ast.BContains:
		return value.Bool(arg(0).AsSet().Contains(arg(1)))
	case ast.BID:
		return value.Num(float64(arg(0).AsRef()))
	case ast.BSelfFn:
		return value.Ref(ev.id)
	default:
		panic(fmt.Sprintf("baseline: unknown builtin %q", e.Name))
	}
}
