package baseline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/value"
)

// srcKitchenSink exercises every language feature the two executors share:
// a rectangular accum join, a minby selection accum, cross-object and self
// emissions, set effects, multi-tick phases, transactions with constraints,
// and reactive handlers.
const srcKitchenSink = `
class Agent {
  state:
    number x = 0;
    number y = 0;
    number r = 8;
    number hp = 100;
    number gold = 50;
    number mark = 0;
    ref<Agent> rival = null;
    set<number> tags;
  effects:
    number damage : sum;
    number dgold : sum;
    number seen : max;
    ref<Agent> pick : minby;
    set<number> dtags : union;
    number marked : max;
  update:
    hp = hp - damage;
    gold = gold + dgold;
    mark = marked;
    tags = dtags;
  handlers:
    when (hp < 90) {
      marked <- 1;
    }
  run {
    accum number near with sum over Agent a from Agent {
      if (a.x >= x - r && a.x <= x + r && a.y >= y - r && a.y <= y + r) {
        near <- 1;
        a.damage <- 0.25;
      }
    } in {
      if (near > 2) {
        dtags <= near;
      }
    }
    accum ref<Agent> closest with minby over Agent a from Agent {
      if (a.x >= x - r && a.x <= x + r && id(a) != id(self())) {
        closest <- a by dist(a.x, a.y, x, y);
      }
    } in {
      if (closest != null) {
        closest.seen <- 1;
      }
    }
    waitNextTick;
    if (rival != null && gold >= 10) {
      atomic (gold >= 0, rival.gold >= 0) {
        dgold <- 0 - 10;
        rival.dgold <- 10;
      }
    }
  }
}
`

func populate(t *testing.T, sc *core.Scenario, seed int64, n int, strat plan.Strategy, workers int) (*engine.World, *baseline.World) {
	t.Helper()
	w, err := sc.NewWorld(engine.Options{Strategy: strat, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	b := sc.NewBaseline()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]value.ID, 0, n)
	for i := 0; i < n; i++ {
		init := map[string]value.Value{
			"x":    value.Num(float64(rng.Intn(40))),
			"y":    value.Num(float64(rng.Intn(40))),
			"gold": value.Num(float64(10 + rng.Intn(50))),
		}
		id, err := w.Spawn("Agent", init)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Spawn("Agent", init); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Wire random rivalries (possibly self or dangling-free refs).
	for _, id := range ids {
		if rng.Intn(2) == 0 {
			r := ids[rng.Intn(len(ids))]
			w.SetState("Agent", id, "rival", value.Ref(r))
			b.SetState("Agent", id, "rival", value.Ref(r))
		}
	}
	return w, b
}

func statesMatch(t *testing.T, w *engine.World, b *baseline.World, attrs []string) bool {
	t.Helper()
	for _, id := range w.IDs("Agent") {
		for _, attr := range attrs {
			ev, eok := w.Get("Agent", id, attr)
			bv, bok := b.Get("Agent", id, attr)
			if eok != bok {
				t.Logf("agent %d %s: presence %v vs %v", id, attr, eok, bok)
				return false
			}
			if !eok {
				continue
			}
			switch ev.Kind() {
			case value.KindNumber:
				if !value.NumbersEqual(ev.AsNumber(), bv.AsNumber(), 1e-9) {
					t.Logf("agent %d %s: %v vs %v", id, attr, ev, bv)
					return false
				}
			default:
				if !ev.Equal(bv) {
					t.Logf("agent %d %s: %v vs %v", id, attr, ev, bv)
					return false
				}
			}
		}
	}
	return true
}

var equivAttrs = []string{"hp", "gold", "mark", "tags", "x", "y"}

// TestEngineBaselineEquivalence is the reproduction's strongest correctness
// check: the set-at-a-time engine (under every physical strategy, serial
// and parallel) and the object-at-a-time interpreter must produce identical
// state trajectories, because they implement the same language semantics
// (§2's claim that compilation to relational algebra preserves the
// script-level meaning).
func TestEngineBaselineEquivalence(t *testing.T) {
	sc, err := core.LoadScenario("kitchen-sink", srcKitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		strat   plan.Strategy
		workers int
	}{
		{plan.NestedLoop, 1},
		{plan.RangeTreeIndex, 1},
		{plan.GridIndex, 1},
		{plan.Auto, 1},
		{plan.Auto, 4},
	}
	for _, cfg := range configs {
		w, b := populate(t, sc, 1234, 60, cfg.strat, cfg.workers)
		for tick := 0; tick < 6; tick++ {
			if err := w.RunTick(); err != nil {
				t.Fatalf("%v/%d engine tick %d: %v", cfg.strat, cfg.workers, tick, err)
			}
			if err := b.RunTick(); err != nil {
				t.Fatalf("baseline tick %d: %v", tick, err)
			}
			if !statesMatch(t, w, b, equivAttrs) {
				t.Fatalf("%v workers=%d: divergence at tick %d", cfg.strat, cfg.workers, tick)
			}
		}
	}
}

// Property: equivalence holds for random seeds and population sizes.
func TestEquivalenceProperty(t *testing.T) {
	sc, err := core.LoadScenario("kitchen-sink", srcKitchenSink)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 5
		w, b := populate(t, sc, seed, n, plan.Auto, 1)
		for tick := 0; tick < 4; tick++ {
			if err := w.RunTick(); err != nil {
				return false
			}
			if err := b.RunTick(); err != nil {
				return false
			}
			if !statesMatch(t, w, b, equivAttrs) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFig2ScenarioEquivalence covers the canonical scenarios from core.
func TestScenarioEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name, src, class string
		attrs            []string
	}{
		{"fig2", core.SrcFig2, "Unit", []string{"health"}},
		{"guard", core.SrcGuard, "Guard", []string{"x", "y", "health", "fleeing", "items"}},
		{"market", core.SrcMarket, "Trader", []string{"gold", "stock"}},
	} {
		sc, err := core.LoadScenario(tc.name, tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		w, err := sc.NewWorld(engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := sc.NewBaseline()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 30; i++ {
			var init map[string]value.Value
			switch tc.class {
			case "Unit":
				init = map[string]value.Value{
					"x": value.Num(float64(rng.Intn(60))),
					"y": value.Num(float64(rng.Intn(60))),
				}
			case "Guard":
				init = map[string]value.Value{
					"px": value.Num(float64(rng.Intn(20))),
					"py": value.Num(float64(rng.Intn(20))),
				}
			case "Trader":
				init = map[string]value.Value{
					"gold":  value.Num(float64(rng.Intn(60))),
					"stock": value.Num(float64(rng.Intn(3))),
				}
			}
			eid, err := w.Spawn(tc.class, init)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.Spawn(tc.class, init); err != nil {
				t.Fatal(err)
			}
			_ = eid
		}
		if tc.class == "Trader" {
			// Wire buyers to sellers.
			ids := w.IDs("Trader")
			for i, id := range ids {
				if i%3 != 0 {
					seller := ids[(i/3)*3]
					w.SetState("Trader", id, "seller", value.Ref(seller))
					w.SetState("Trader", id, "wants", value.Num(1))
					b.SetState("Trader", id, "seller", value.Ref(seller))
					b.SetState("Trader", id, "wants", value.Num(1))
				}
			}
		}
		for tick := 0; tick < 5; tick++ {
			if err := w.RunTick(); err != nil {
				t.Fatalf("%s engine: %v", tc.name, err)
			}
			if err := b.RunTick(); err != nil {
				t.Fatalf("%s baseline: %v", tc.name, err)
			}
			for _, id := range w.IDs(tc.class) {
				for _, attr := range tc.attrs {
					ev, _ := w.Get(tc.class, id, attr)
					bv, _ := b.Get(tc.class, id, attr)
					if ev.Kind() == value.KindNumber {
						if !value.NumbersEqual(ev.AsNumber(), bv.AsNumber(), 1e-9) {
							t.Fatalf("%s tick %d: #%d.%s = %v vs %v", tc.name, tick, id, attr, ev, bv)
						}
					} else if !ev.Equal(bv) {
						t.Fatalf("%s tick %d: #%d.%s = %v vs %v", tc.name, tick, id, attr, ev, bv)
					}
				}
			}
		}
	}
}
