// Package baseline implements the object-at-a-time comparator the paper
// positions SGL against (§1–2): the "middleware" status quo in which each
// NPC's script is interpreted individually against a per-object store, and
// every accum-style aggregation scans all objects. It executes the same
// type-checked AST as the set-at-a-time engine under identical semantics
// (state-effect discipline, ⊕ combination, greedy transaction admission,
// phase counters, reactive handlers), so the two can be compared both for
// correctness (property tests assert equal trajectories) and for
// performance (benchmarks E1/E2).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/combinator"
	"repro/internal/schema"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

// World is an object-at-a-time game world.
type World struct {
	info    *sem.Info
	classes map[string]*classBase
	order   []*classBase
	tick    int64
	nextID  value.ID
	inTick  bool

	pendSpawn []pendSpawn
	pendKill  []pendKill
	txns      []*txn
}

type pendSpawn struct {
	class string
	id    value.ID
	init  map[string]value.Value
}

type pendKill struct {
	class string
	id    value.ID
}

type classBase struct {
	name string
	cls  *schema.Class
	decl *ast.ClassDecl

	objs  map[value.ID]*object
	order []value.ID // spawn order; compacted on kill
}

type object struct {
	state []value.Value
	pc    int
	fx    []combinator.Accumulator
	// staged new-state values for the update step
	staged map[int]value.Value
}

type txn struct {
	class       string
	source      value.ID
	frame       []value.Value
	constraints []ast.Expr
	emissions   []emission
}

type emission struct {
	class   string
	target  value.ID
	attrIdx int
	val     value.Value
	key     float64
}

// New builds a baseline world from analyzed SGL.
func New(info *sem.Info) *World {
	w := &World{
		info:    info,
		classes: make(map[string]*classBase),
		nextID:  1,
	}
	for _, cd := range info.Program.Classes {
		cls, _ := info.Schema.Class(cd.Name)
		cb := &classBase{name: cd.Name, cls: cls, decl: cd, objs: make(map[value.ID]*object)}
		w.classes[cd.Name] = cb
		w.order = append(w.order, cb)
	}
	return w
}

// Tick returns the number of completed ticks.
func (w *World) Tick() int64 { return w.tick }

// Spawn creates an object (deferred to the tick boundary mid-tick).
func (w *World) Spawn(class string, init map[string]value.Value) (value.ID, error) {
	cb, ok := w.classes[class]
	if !ok {
		return value.NullID, fmt.Errorf("baseline: unknown class %q", class)
	}
	for name := range init {
		if cb.cls.StateIndex(name) < 0 {
			return value.NullID, fmt.Errorf("baseline: class %s has no state attribute %q", class, name)
		}
	}
	id := w.nextID
	w.nextID++
	if w.inTick {
		w.pendSpawn = append(w.pendSpawn, pendSpawn{class, id, init})
		return id, nil
	}
	w.doSpawn(cb, id, init)
	return id, nil
}

func (w *World) doSpawn(cb *classBase, id value.ID, init map[string]value.Value) {
	o := &object{
		state:  make([]value.Value, len(cb.cls.State)),
		fx:     make([]combinator.Accumulator, len(cb.cls.Effects)),
		staged: make(map[int]value.Value),
	}
	for i, a := range cb.cls.State {
		v := a.Default
		if ov, ok := init[a.Name]; ok {
			v = ov
		}
		if a.Kind == value.KindSet {
			v = value.SetVal(v.AsSet().Clone())
		}
		o.state[i] = v
	}
	for i, e := range cb.cls.Effects {
		o.fx[i] = combinator.New(e.Comb, e.Kind)
	}
	cb.objs[id] = o
	cb.order = append(cb.order, id)
}

// Kill removes an object (deferred mid-tick).
func (w *World) Kill(class string, id value.ID) error {
	cb, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("baseline: unknown class %q", class)
	}
	if w.inTick {
		w.pendKill = append(w.pendKill, pendKill{class, id})
		return nil
	}
	cb.kill(id)
	return nil
}

func (cb *classBase) kill(id value.ID) {
	if _, ok := cb.objs[id]; !ok {
		return
	}
	delete(cb.objs, id)
	for i, oid := range cb.order {
		if oid == id {
			cb.order = append(cb.order[:i], cb.order[i+1:]...)
			break
		}
	}
}

// Count returns the number of live objects of a class.
func (w *World) Count(class string) int {
	if cb, ok := w.classes[class]; ok {
		return len(cb.objs)
	}
	return 0
}

// IDs returns live ids in spawn order.
func (w *World) IDs(class string) []value.ID {
	if cb, ok := w.classes[class]; ok {
		return append([]value.ID(nil), cb.order...)
	}
	return nil
}

// Get reads a state attribute.
func (w *World) Get(class string, id value.ID, attr string) (value.Value, bool) {
	cb, ok := w.classes[class]
	if !ok {
		return value.Value{}, false
	}
	o, ok := cb.objs[id]
	if !ok {
		return value.Value{}, false
	}
	i := cb.cls.StateIndex(attr)
	if i < 0 {
		return value.Value{}, false
	}
	return o.state[i], true
}

// SetState assigns a state attribute between ticks (scenario setup).
func (w *World) SetState(class string, id value.ID, attr string, v value.Value) error {
	if w.inTick {
		return fmt.Errorf("baseline: SetState during a tick")
	}
	cb, ok := w.classes[class]
	if !ok {
		return fmt.Errorf("baseline: unknown class %q", class)
	}
	o, ok := cb.objs[id]
	if !ok {
		return fmt.Errorf("baseline: no object %d", id)
	}
	i := cb.cls.StateIndex(attr)
	if i < 0 {
		return fmt.Errorf("baseline: no attribute %q", attr)
	}
	o.state[i] = v
	return nil
}

// PC returns an object's script phase.
func (w *World) PC(class string, id value.ID) int {
	if cb, ok := w.classes[class]; ok {
		if o, ok := cb.objs[id]; ok {
			return o.pc
		}
	}
	return -1
}

// RunTick executes one state-effect cycle, object at a time.
func (w *World) RunTick() error {
	w.inTick = true

	// Query/effect phase: interpret each object's current script phase.
	for _, cb := range w.order {
		if cb.decl.Run == nil {
			continue
		}
		phases := splitPhases(cb.decl.Run)
		for _, id := range cb.order {
			o := cb.objs[id]
			ev := &evalCtx{w: w, cb: cb, id: id, obj: o, frame: make([]value.Value, cb.decl.NumSlots)}
			ev.runStmts(phases[o.pc])
		}
	}

	// Transaction admission (greedy, deterministic order — §3.1).
	w.admitTxns()

	// Update step: expression rules over old state + combined effects.
	for _, cb := range w.order {
		for _, id := range cb.order {
			o := cb.objs[id]
			ev := &evalCtx{w: w, cb: cb, id: id, obj: o, effects: true}
			for _, r := range cb.decl.Updates {
				i := cb.cls.StateIndex(r.Attr)
				o.staged[i] = ev.eval(r.Expr)
			}
		}
	}
	for _, cb := range w.order {
		for _, id := range cb.order {
			o := cb.objs[id]
			for i, v := range o.staged {
				o.state[i] = v
				delete(o.staged, i)
			}
			// Advance the program counter (§3.2).
			if cb.decl.NumPhases > 1 {
				o.pc = (o.pc + 1) % cb.decl.NumPhases
			}
		}
	}

	// Clear effects, then run reactive handlers on the new state (§3.2).
	for _, cb := range w.order {
		for _, id := range cb.order {
			o := cb.objs[id]
			for i := range o.fx {
				o.fx[i].Reset()
			}
		}
	}
	w.txns = w.txns[:0]
	for _, cb := range w.order {
		if len(cb.decl.Handlers) == 0 {
			continue
		}
		for _, id := range cb.order {
			o := cb.objs[id]
			ev := &evalCtx{w: w, cb: cb, id: id, obj: o, frame: make([]value.Value, cb.decl.NumSlots)}
			for _, h := range cb.decl.Handlers {
				if ev.eval(h.Cond).AsBool() {
					ev.runStmts(h.Body.Stmts)
				}
			}
		}
	}

	w.inTick = false
	for _, p := range w.pendKill {
		w.classes[p.class].kill(p.id)
	}
	w.pendKill = w.pendKill[:0]
	for _, p := range w.pendSpawn {
		w.doSpawn(w.classes[p.class], p.id, p.init)
	}
	w.pendSpawn = w.pendSpawn[:0]
	w.tick++
	return nil
}

// Run executes n ticks.
func (w *World) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := w.RunTick(); err != nil {
			return err
		}
	}
	return nil
}

// splitPhases mirrors the engine's program-counter lowering: the run block
// is cut at top-level waitNextTick statements.
func splitPhases(run *ast.Block) [][]ast.Stmt {
	var phases [][]ast.Stmt
	var cur []ast.Stmt
	for _, s := range run.Stmts {
		if _, ok := s.(*ast.WaitStmt); ok {
			phases = append(phases, cur)
			cur = nil
			continue
		}
		cur = append(cur, s)
	}
	return append(phases, cur)
}

// admitTxns mirrors engine.AdmitOrdered: deterministic order, tentative
// application, constraint check against rule-replayed post-state, rollback
// on violation.
func (w *World) admitTxns() {
	sort.SliceStable(w.txns, func(i, j int) bool {
		if w.txns[i].class != w.txns[j].class {
			return w.txns[i].class < w.txns[j].class
		}
		return w.txns[i].source < w.txns[j].source
	})
	for _, t := range w.txns {
		type applied struct {
			o    *object
			attr int
			val  value.Value
			key  float64
		}
		var done []applied
		for _, e := range t.emissions {
			cb := w.classes[e.class]
			o, ok := cb.objs[e.target]
			if !ok {
				continue
			}
			o.fx[e.attrIdx].Add(e.val, e.key)
			done = append(done, applied{o, e.attrIdx, e.val, e.key})
		}
		cb := w.classes[t.class]
		o, live := cb.objs[t.source]
		ok := live
		if ok {
			ev := &evalCtx{w: w, cb: cb, id: t.source, obj: o, frame: t.frame, tentative: true}
			for _, c := range t.constraints {
				if !ev.eval(c).AsBool() {
					ok = false
					break
				}
			}
		}
		if !ok {
			for _, a := range done {
				a.o.fx[a.attr].Remove(a.val, a.key)
			}
		}
	}
}
