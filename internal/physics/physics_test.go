package physics_test

import (
	"math"
	"testing"

	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/physics"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
	"repro/internal/value"
)

const src = `
class Ball {
  state:
    number x = 0 by physics;
    number y = 0 by physics;
    number gx = 0;
    number gy = 0;
  effects:
    number vx : avg;
    number vy : avg;
  run {
    vx <- (gx - x) * 0.5;
    vy <- (gy - y) * 0.5;
  }
}
`

func world(t *testing.T, cfg physics.Config) (*engine.World, *physics.Physics) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatal(err)
	}
	w, err := engine.New(prog, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Class == "" {
		cfg = physics.Config{Class: "Ball", XAttr: "x", YAttr: "y", VXEffect: "vx", VYEffect: "vy"}
	}
	ph := physics.New2D(cfg)
	if err := w.Register(ph); err != nil {
		t.Fatal(err)
	}
	return w, ph
}

func TestIntegration(t *testing.T) {
	w, _ := world(t, physics.Config{})
	id, _ := w.Spawn("Ball", map[string]value.Value{"gx": value.Num(10), "gy": value.Num(0)})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	// vx = (10-0)*0.5 = 5 → x = 5.
	if got := w.MustGet("Ball", id, "x").AsNumber(); got != 5 {
		t.Fatalf("x = %v, want 5", got)
	}
	// Converges to the goal over ticks.
	w.Run(20)
	if got := w.MustGet("Ball", id, "x").AsNumber(); math.Abs(got-10) > 0.1 {
		t.Fatalf("x = %v, want ~10", got)
	}
}

func TestNoIntentionNoMovement(t *testing.T) {
	w, _ := world(t, physics.Config{})
	id, _ := w.Spawn("Ball", map[string]value.Value{"gx": value.Num(0), "gy": value.Num(0)})
	w.SetState("Ball", id, "x", value.Num(0))
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	// Intention is (0-0)*0.5 = 0: stays put.
	if got := w.MustGet("Ball", id, "x").AsNumber(); got != 0 {
		t.Fatalf("x = %v, want 0", got)
	}
}

func TestConflictingIntentionsSeparate(t *testing.T) {
	// Two balls aiming at the same spot: the physics engine must place
	// them at adjacent positions (§2.2's motivating example).
	w, ph := world(t, physics.Config{
		Class: "Ball", XAttr: "x", YAttr: "y", VXEffect: "vx", VYEffect: "vy",
		Radius: 1, Iterations: 8,
	})
	a, _ := w.Spawn("Ball", map[string]value.Value{
		"x": value.Num(0), "gx": value.Num(5), "gy": value.Num(0),
	})
	b, _ := w.Spawn("Ball", map[string]value.Value{
		"x": value.Num(10), "gx": value.Num(5), "gy": value.Num(0),
	})
	if err := w.Run(12); err != nil {
		t.Fatal(err)
	}
	ax := w.MustGet("Ball", a, "x").AsNumber()
	bx := w.MustGet("Ball", b, "x").AsNumber()
	ay := w.MustGet("Ball", a, "y").AsNumber()
	by := w.MustGet("Ball", b, "y").AsNumber()
	d := math.Hypot(ax-bx, ay-by)
	if d < 1.9 { // 2*radius with small tolerance
		t.Fatalf("balls overlap: dist = %v (a=%v,%v b=%v,%v)", d, ax, ay, bx, by)
	}
	if ph.Collisions == 0 {
		t.Error("no collisions recorded despite contention")
	}
}

func TestBoundsClamp(t *testing.T) {
	w, _ := world(t, physics.Config{
		Class: "Ball", XAttr: "x", YAttr: "y", VXEffect: "vx", VYEffect: "vy",
		Bounds: &physics.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8},
	})
	id, _ := w.Spawn("Ball", map[string]value.Value{"gx": value.Num(100), "gy": value.Num(100)})
	w.Run(10)
	x := w.MustGet("Ball", id, "x").AsNumber()
	y := w.MustGet("Ball", id, "y").AsNumber()
	if x > 8 || y > 8 {
		t.Fatalf("escaped bounds: %v,%v", x, y)
	}
}

func TestMaxSpeed(t *testing.T) {
	w, _ := world(t, physics.Config{
		Class: "Ball", XAttr: "x", YAttr: "y", VXEffect: "vx", VYEffect: "vy",
		MaxSpeed: 1,
	})
	id, _ := w.Spawn("Ball", map[string]value.Value{"gx": value.Num(1000)})
	w.RunTick()
	if got := w.MustGet("Ball", id, "x").AsNumber(); got > 1.0001 {
		t.Fatalf("x = %v, speed not clamped", got)
	}
}

func TestSamePointDeterministicSeparation(t *testing.T) {
	w, _ := world(t, physics.Config{
		Class: "Ball", XAttr: "x", YAttr: "y", VXEffect: "vx", VYEffect: "vy",
		Radius: 1,
	})
	// Both at the exact same point with no movement intention.
	a, _ := w.Spawn("Ball", map[string]value.Value{"x": value.Num(5), "y": value.Num(5), "gx": value.Num(5), "gy": value.Num(5)})
	b, _ := w.Spawn("Ball", map[string]value.Value{"x": value.Num(5), "y": value.Num(5), "gx": value.Num(5), "gy": value.Num(5)})
	if err := w.RunTick(); err != nil {
		t.Fatal(err)
	}
	ax := w.MustGet("Ball", a, "x").AsNumber()
	bx := w.MustGet("Ball", b, "x").AsNumber()
	if ax == bx {
		t.Fatal("coincident balls not separated")
	}
	if ax >= bx {
		t.Fatalf("separation not deterministic by id: a=%v b=%v", ax, bx)
	}
}
