// Package physics is the dedicated physics update component of §2.2: a
// non-scripted subsystem that owns position attributes, integrates the
// velocity intentions scripts emit as effects, detects collisions and
// separates overlapping objects. Its output deliberately need not match any
// single script's intention — when two characters move to the same spot it
// places them at adjacent positions, exactly the behaviour the paper uses
// to motivate broadened update rules.
package physics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/value"
)

// Rect is an axis-aligned world boundary.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Config configures a 2-D physics component for one class.
type Config struct {
	// Class is the class whose position this component owns.
	Class string
	// XAttr, YAttr are the owned state attributes (declare them
	// `by physics` in the class).
	XAttr, YAttr string
	// VXEffect, VYEffect are the effect attributes carrying intended
	// velocity (typically declared with the avg combinator). Objects with
	// no contribution this tick do not move.
	VXEffect, VYEffect string
	// Dt is the integration step per tick (default 1).
	Dt float64
	// Radius is the collision radius; 0 disables collision resolution.
	Radius float64
	// Bounds, when non-nil, clamps positions.
	Bounds *Rect
	// Iterations is the number of separation passes (default 4).
	Iterations int
	// MaxSpeed, when positive, clamps intended velocity magnitude.
	MaxSpeed float64
}

// Physics implements engine.UpdateComponent.
type Physics struct {
	cfg Config
	// Collisions counts separations performed on the last tick (observable
	// for tests and the contention experiment E3).
	Collisions int64
}

// New2D builds the component. Register it on a world whose class declares
// XAttr/YAttr `by physics`.
func New2D(cfg Config) *Physics {
	if cfg.Dt == 0 {
		cfg.Dt = 1
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 4
	}
	return &Physics{cfg: cfg}
}

// Name implements engine.UpdateComponent.
func (p *Physics) Name() string { return "physics" }

type body struct {
	id   value.ID
	x, y float64
}

// Update implements engine.UpdateComponent: integrate intentions, resolve
// collisions, clamp to bounds, stage owned attributes.
func (p *Physics) Update(ctx *engine.UpdateCtx) error {
	cfg := p.cfg
	ids := ctx.IDs(cfg.Class)
	bodies := make([]body, 0, len(ids))
	for _, id := range ids {
		xv, ok := ctx.State(cfg.Class, id, cfg.XAttr)
		if !ok {
			return fmt.Errorf("physics: missing %s.%s", cfg.Class, cfg.XAttr)
		}
		yv, _ := ctx.State(cfg.Class, id, cfg.YAttr)
		x, y := xv.AsNumber(), yv.AsNumber()
		var vx, vy float64
		if v, ok := ctx.Effect(cfg.Class, id, cfg.VXEffect); ok {
			vx = v.AsNumber()
		}
		if v, ok := ctx.Effect(cfg.Class, id, cfg.VYEffect); ok {
			vy = v.AsNumber()
		}
		if cfg.MaxSpeed > 0 {
			if sp := math.Hypot(vx, vy); sp > cfg.MaxSpeed {
				s := cfg.MaxSpeed / sp
				vx, vy = vx*s, vy*s
			}
		}
		bodies = append(bodies, body{id: id, x: x + vx*cfg.Dt, y: y + vy*cfg.Dt})
	}

	if cfg.Radius > 0 {
		p.resolve(bodies)
	}
	if cfg.Bounds != nil {
		for i := range bodies {
			bodies[i].x = math.Min(math.Max(bodies[i].x, cfg.Bounds.MinX), cfg.Bounds.MaxX)
			bodies[i].y = math.Min(math.Max(bodies[i].y, cfg.Bounds.MinY), cfg.Bounds.MaxY)
		}
	}
	for _, b := range bodies {
		if err := ctx.Stage(cfg.Class, b.id, cfg.XAttr, value.Num(b.x)); err != nil {
			return err
		}
		if err := ctx.Stage(cfg.Class, b.id, cfg.YAttr, value.Num(b.y)); err != nil {
			return err
		}
	}
	return nil
}

// resolve separates overlapping bodies with a sweep-and-prune pass over x,
// iterated a fixed number of times. Deterministic: bodies are processed in
// sorted order and pushed apart symmetrically.
func (p *Physics) resolve(bodies []body) {
	r2 := 2 * p.cfg.Radius
	idx := make([]int, len(bodies))
	for it := 0; it < p.cfg.Iterations; it++ {
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return bodies[idx[a]].x < bodies[idx[b]].x })
		moved := false
		for ii := 0; ii < len(idx); ii++ {
			i := idx[ii]
			for jj := ii + 1; jj < len(idx); jj++ {
				j := idx[jj]
				if bodies[j].x-bodies[i].x > r2 {
					break // sweep: no further overlap possible on x
				}
				dx := bodies[j].x - bodies[i].x
				dy := bodies[j].y - bodies[i].y
				d := math.Hypot(dx, dy)
				if d >= r2 {
					continue
				}
				p.Collisions++
				moved = true
				var nx, ny float64
				if d > 1e-9 {
					nx, ny = dx/d, dy/d
				} else {
					// Same point: separate deterministically along id order.
					if bodies[i].id < bodies[j].id {
						nx, ny = 1, 0
					} else {
						nx, ny = -1, 0
					}
					d = 0
				}
				push := (r2 - d) / 2
				bodies[i].x -= nx * push
				bodies[i].y -= ny * push
				bodies[j].x += nx * push
				bodies[j].y += ny * push
			}
		}
		if !moved {
			break
		}
	}
}
