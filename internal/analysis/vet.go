package analysis

// Author-facing diagnostics over the analysis result — the `sglc vet`
// backend. Every check is derived from the same dataflow facts the engine
// uses for physical planning, so each diagnostic states a real planning
// consequence: a dead handler never fires, an unsatisfiable constraint
// makes its atomic block abort every admission, a half-open join range
// defeats tight indexing and forces full ghost replication under
// partitioned execution, and a non-commutative float fold written
// cross-object pins the whole class to the scalar path.
//
// The checks are deliberately conservative: a diagnostic fires only when
// the property is provable from the compiled IR (constant folding over
// literals, fold classification, join shape), never on heuristics. All
// shipped example scenarios vet clean; vet_clean_test.go pins that.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/compile"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// Diagnostic codes, one per check.
const (
	DiagDeadHandler     = "dead-handler"
	DiagDeadCode        = "dead-code"
	DiagUnsatConstraint = "unsat-constraint"
	DiagTrivialCons     = "trivial-constraint"
	DiagUnboundedJoin   = "unbounded-join"
	DiagNoncommFold     = "noncommutative-fold"
	DiagDeadEffect      = "dead-effect"
)

// Diagnostic is one vet finding, anchored to a source position.
type Diagnostic struct {
	Pos   token.Pos
	Class string
	Code  string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%d:%d: %s: %s", d.Pos.Line, d.Pos.Col, d.Code, d.Msg)
}

// Vet analyzes the program and runs every diagnostic check, returning
// findings in source order.
func Vet(prog *compile.Program) []Diagnostic {
	return VetResult(Analyze(prog))
}

// VetResult runs the checks over an existing analysis result.
func VetResult(r *Result) []Diagnostic {
	v := &vetter{r: r}
	names := make([]string, 0, len(r.Classes))
	for n := range r.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := r.Classes[n]
		v.checkHandlers(c)
		v.checkSteps(c)
		v.checkJoins(c)
		v.checkNoncommFolds(c)
		v.checkDeadEffects(c)
	}
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i], v.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return v.diags
}

type vetter struct {
	r     *Result
	diags []Diagnostic
}

func (v *vetter) add(pos token.Pos, class, code, format string, args ...any) {
	v.diags = append(v.diags, Diagnostic{
		Pos: pos, Class: class, Code: code, Msg: fmt.Sprintf(format, args...),
	})
}

// checkHandlers flags handlers whose condition folds to a constant false:
// the handler body is unreachable on every tick.
func (v *vetter) checkHandlers(c *Class) {
	for _, h := range c.Plan.Handlers {
		if h.Src == nil {
			continue
		}
		if cv, ok := foldConst(h.Src.Cond); ok && cv.Kind() == value.KindBool && !cv.AsBool() {
			v.add(h.Src.Cond.Position(), c.Name, DiagDeadHandler,
				"handler condition is always false; the handler can never fire")
		}
	}
}

// checkSteps walks every phase and handler body for if conditions that
// fold to constants (a provably dead branch) and atomic constraints that
// fold to constants (unsatisfiable: the block aborts every admission;
// trivially true: the constraint never rejects anything).
func (v *vetter) checkSteps(c *Class) {
	var walk func(steps []compile.Step)
	walk = func(steps []compile.Step) {
		for _, s := range steps {
			switch s := s.(type) {
			case *compile.IfStep:
				if cv, ok := foldConst(s.CondSrc); ok && cv.Kind() == value.KindBool {
					if !cv.AsBool() {
						v.add(s.CondSrc.Position(), c.Name, DiagDeadCode,
							"condition is always false; the branch body is dead code")
					} else if len(s.Else) > 0 {
						v.add(s.CondSrc.Position(), c.Name, DiagDeadCode,
							"condition is always true; the else branch is dead code")
					}
				}
				walk(s.Then)
				walk(s.Else)
			case *compile.AccumStep:
				walk(s.Body)
				if s.Join != nil {
					walk(s.Join.Inner)
				}
			case *compile.AtomicStep:
				for _, src := range s.Srcs {
					cv, ok := foldConst(src)
					if !ok || cv.Kind() != value.KindBool {
						continue
					}
					if !cv.AsBool() {
						v.add(src.Position(), c.Name, DiagUnsatConstraint,
							"constraint is always false; the atomic block can never commit")
					} else {
						v.add(src.Position(), c.Name, DiagTrivialCons,
							"constraint is always true; it never rejects an admission")
					}
				}
				walk(s.Body)
			}
		}
	}
	for _, steps := range c.Plan.Phases {
		walk(steps)
	}
	for _, h := range c.Plan.Handlers {
		walk(h.Body)
	}
}

// checkJoins flags range dimensions bounded on only one side. A half-open
// range cannot anchor an interaction radius, so under partitioned
// execution the site falls back to a shared whole-extent index — every
// partition holds a full ghost replica of the source extent.
func (v *vetter) checkJoins(c *Class) {
	for _, j := range c.Joins {
		if j.Step.Src == nil {
			continue
		}
		for _, d := range j.HalfOpen {
			attr := ""
			if sc := v.r.Class(j.SourceClass); sc != nil {
				attr = sc.Plan.Class.State[j.Step.Join.Ranges[d].AttrIdx].Name
			}
			v.add(j.Step.Src.Pos, c.Name, DiagUnboundedJoin,
				"join range on %s.%s is bounded on one side only; the predicate cannot anchor an interaction radius and forces full ghost replication under partitioned execution",
				j.SourceClass, attr)
		}
	}
}

// checkNoncommFolds flags cross-object emissions into a non-exact float
// fold (sum/avg over numbers reassociate) of the emitter's own class when
// some phase of that class would otherwise vectorize a self-emission into
// the same effect: the cross emission is exactly what pins every phase of
// the class to the scalar path (analysis.Class.CrossSelfEmit).
func (v *vetter) checkNoncommFolds(c *Class) {
	for _, s := range c.Phases {
		for _, e := range s.Emits {
			if !e.Targeted || e.Class != c.Name || e.AccumSlot >= 0 || e.InAtomic {
				continue
			}
			f := c.Folds[e.Attr]
			if f.Exact {
				continue
			}
			pinned := false
			for _, ps := range c.Phases {
				if !ps.Vectorizable {
					continue
				}
				for _, pe := range ps.Emits {
					if !pe.Targeted && pe.Class == c.Name && pe.Attr == e.Attr {
						pinned = true
					}
				}
			}
			if !pinned {
				continue
			}
			v.add(e.Pos, c.Name, DiagNoncommFold,
				"cross-object emission into %s.%s interleaves with vectorized self-emissions under a non-exact float fold (%s); every phase of %s runs scalar to preserve bit-identical accumulation order",
				c.Name, c.Plan.Class.Effects[e.Attr].Name, f.Comb, c.Name)
		}
	}
}

// checkDeadEffects flags effect attributes some script writes but no
// update rule or handler of the class ever reads: the accumulated value
// is folded and discarded every tick. Classes with component-owned state
// are skipped — their effects may be consumed by engine components the
// analysis cannot see.
func (v *vetter) checkDeadEffects(c *Class) {
	for _, a := range c.Plan.Class.State {
		if a.Owner != "" {
			return
		}
	}
	read := make([]bool, len(c.Plan.Class.Effects))
	mark := func(rs *ReadSet) {
		for _, ei := range rs.Effects {
			read[ei] = true
		}
	}
	for i := range c.Updates {
		mark(&c.Updates[i].Reads)
	}
	for _, s := range c.Handlers {
		mark(&s.Reads)
	}
	for _, s := range c.Phases {
		mark(&s.Reads)
	}
	// First writer position per effect, across all classes' scripts.
	firstWrite := make(map[int]token.Pos)
	for _, oc := range v.r.Classes {
		for _, s := range append(append([]*Script(nil), oc.Phases...), oc.Handlers...) {
			for _, e := range s.Emits {
				if e.Class != c.Name || e.AccumSlot >= 0 {
					continue
				}
				if _, seen := firstWrite[e.Attr]; !seen || lessPos(e.Pos, firstWrite[e.Attr]) {
					firstWrite[e.Attr] = e.Pos
				}
			}
		}
	}
	for ei, pos := range firstWrite {
		if read[ei] {
			continue
		}
		v.add(pos, c.Name, DiagDeadEffect,
			"effect %s.%s is written but no update rule or handler reads it; the folded value is discarded every tick",
			c.Name, c.Plan.Class.Effects[ei].Name)
	}
}

func lessPos(a, b token.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// foldConst evaluates an expression over literals only, with short-circuit
// semantics for && and || (a constant false operand makes the conjunction
// false regardless of the other side, and dually for disjunction).
func foldConst(e ast.Expr) (value.Value, bool) {
	switch e := e.(type) {
	case *ast.NumLit:
		return value.Num(e.V), true
	case *ast.BoolLit:
		return value.Bool(e.V), true
	case *ast.StrLit:
		return value.Str(e.V), true
	case *ast.UnaryExpr:
		x, ok := foldConst(e.X)
		if !ok {
			return value.Value{}, false
		}
		switch e.Op {
		case token.NOT:
			if x.Kind() == value.KindBool {
				return value.Bool(!x.AsBool()), true
			}
		case token.MINUS:
			if x.Kind() == value.KindNumber {
				return value.Num(-x.AsNumber()), true
			}
		}
		return value.Value{}, false
	case *ast.BinaryExpr:
		x, xok := foldConst(e.X)
		y, yok := foldConst(e.Y)
		switch e.Op {
		case token.ANDAND:
			if xok && x.Kind() == value.KindBool && !x.AsBool() {
				return value.Bool(false), true
			}
			if yok && y.Kind() == value.KindBool && !y.AsBool() {
				return value.Bool(false), true
			}
			if xok && yok && x.Kind() == value.KindBool && y.Kind() == value.KindBool {
				return value.Bool(x.AsBool() && y.AsBool()), true
			}
			return value.Value{}, false
		case token.OROR:
			if xok && x.Kind() == value.KindBool && x.AsBool() {
				return value.Bool(true), true
			}
			if yok && y.Kind() == value.KindBool && y.AsBool() {
				return value.Bool(true), true
			}
			if xok && yok && x.Kind() == value.KindBool && y.Kind() == value.KindBool {
				return value.Bool(x.AsBool() || y.AsBool()), true
			}
			return value.Value{}, false
		}
		if !xok || !yok {
			return value.Value{}, false
		}
		if x.Kind() == value.KindNumber && y.Kind() == value.KindNumber {
			a, b := x.AsNumber(), y.AsNumber()
			switch e.Op {
			case token.PLUS:
				return value.Num(a + b), true
			case token.MINUS:
				return value.Num(a - b), true
			case token.STAR:
				return value.Num(a * b), true
			case token.SLASH:
				return value.Num(a / b), true
			case token.PERCENT:
				return value.Num(math.Mod(a, b)), true
			case token.EQ:
				return value.Bool(a == b), true
			case token.NEQ:
				return value.Bool(a != b), true
			case token.LT:
				return value.Bool(a < b), true
			case token.LE:
				return value.Bool(a <= b), true
			case token.GT:
				return value.Bool(a > b), true
			case token.GE:
				return value.Bool(a >= b), true
			}
		}
		if x.Kind() == value.KindBool && y.Kind() == value.KindBool {
			switch e.Op {
			case token.EQ:
				return value.Bool(x.AsBool() == y.AsBool()), true
			case token.NEQ:
				return value.Bool(x.AsBool() != y.AsBool()), true
			}
		}
		return value.Value{}, false
	case *ast.CondExpr:
		c, ok := foldConst(e.C)
		if !ok || c.Kind() != value.KindBool {
			return value.Value{}, false
		}
		if c.AsBool() {
			return foldConst(e.T)
		}
		return foldConst(e.F)
	}
	return value.Value{}, false
}
