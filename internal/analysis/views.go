package analysis

// Subscription-predicate stability for incremental view maintenance
// (internal/views). A subscription's predicate is evaluated per row of the
// subscribed class; delta maintenance re-evaluates it only for rows the
// engine changefeed marked. That is sound exactly when every read the
// predicate performs is visible through the subscriber's own row: own-row
// state attributes, literals, self identity and pure builtins. Any read
// that escapes the row — a cross-object ref chase, a class extent, a
// combined-effect read — can change value without the subscriber's row
// entering the feed, so the views registry pins such subscriptions to the
// rescan path every tick. `sglc vet` surfaces the same fact to authors via
// //view directives (VetViews) so the per-tick cost is visible before a
// subscription ships.

import (
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/token"
)

// DiagViewRescan is the code for subscription predicates that cannot be
// delta-maintained from the changefeed.
const DiagViewRescan = "view-rescan"

// ViewPred is the delta-maintainability analysis of one subscription
// predicate over a class extent.
type ViewPred struct {
	Class string

	// Reads lists the own-row state attributes the predicate touches, in
	// first-seen order. The views registry unions these with the payload
	// columns for its column-version skip check.
	Reads []int

	// Stable reports that delta maintenance is sound: every read resolves
	// through the subscriber's own row, so any value change marks the row
	// in the changefeed.
	Stable bool

	// Reasons names each construct that breaks stability (empty when
	// Stable). These are the why-reasons behind a view-rescan diagnostic.
	Reasons []string
}

// AnalyzeViewPred classifies a resolved (sem-annotated) predicate
// expression for the views layer. The expression must have been checked by
// sem.Info.AnalyzeExpr (or canonicalized from one that was): bindings are
// trusted, not re-resolved. BindLocal slots are stable — the views
// compiler rebinds literal constants to retained frame slots so that
// same-shape predicates share one kernel.
func AnalyzeViewPred(class string, e ast.Expr) ViewPred {
	w := &viewWalk{pred: ViewPred{Class: class, Stable: true}, seen: map[int]bool{}}
	w.walk(e)
	return w.pred
}

type viewWalk struct {
	pred ViewPred
	seen map[int]bool
}

func (w *viewWalk) read(attr int) {
	if !w.seen[attr] {
		w.seen[attr] = true
		w.pred.Reads = append(w.pred.Reads, attr)
	}
}

func (w *viewWalk) unstable(reason string) {
	w.pred.Stable = false
	w.pred.Reasons = append(w.pred.Reasons, reason)
}

func (w *viewWalk) walk(e ast.Expr) {
	switch e := e.(type) {
	case *ast.NumLit, *ast.BoolLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindStateAttr:
			w.read(e.Bind.AttrIdx)
		case ast.BindLocal:
			// Views-compiler constant slot: fixed for the subscription's
			// lifetime.
		case ast.BindSelf:
		case ast.BindExtent:
			w.unstable(fmt.Sprintf("iterates the %s extent — rows can enter or leave the result without the subscriber's own row ever changing", e.Bind.Class))
		case ast.BindEffectAttr:
			w.unstable(fmt.Sprintf("reads combined effect %q — effects are transient within a tick and never reach the changefeed", e.Name))
		default:
			w.unstable(fmt.Sprintf("reads %q, which has no own-row binding", e.Name))
		}
	case *ast.FieldExpr:
		w.unstable(fmt.Sprintf("reads %s.%s through a ref — writes to the target row (or its death) never mark the subscriber's row in the changefeed", e.Class, e.Name))
		// The base still contributes own-row reads (e.g. the ref attribute
		// itself); record them so the read set stays complete.
		w.walk(e.X)
	case *ast.UnaryExpr:
		w.walk(e.X)
	case *ast.BinaryExpr:
		w.walk(e.X)
		w.walk(e.Y)
	case *ast.CondExpr:
		w.walk(e.C)
		w.walk(e.T)
		w.walk(e.F)
	case *ast.CallExpr:
		// Every SGL builtin is a pure function of its arguments.
		for _, a := range e.Args {
			w.walk(a)
		}
	default:
		w.unstable("contains an expression form outside the predicate subset")
	}
}

// viewDirective is the comment form VetViews scans for:
//
//	//view Class: expr
//
// declaring that clients will subscribe to Class rows matching expr. The
// directive costs nothing at runtime; it exists so vet can price the
// subscription before it ships.
const viewDirective = "//view "

// VetViews scans src for //view directives and diagnoses each one whose
// predicate the views registry would pin to a full rescan every tick,
// with the why-reasons from the stability walk. Directives that fail to
// parse or type-check are also reported (the subscription could never be
// registered as written).
func VetViews(prog *compile.Program, src string) []Diagnostic {
	var diags []Diagnostic
	for lineNo, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, viewDirective)
		if idx < 0 {
			continue
		}
		pos := token.Pos{Line: lineNo + 1, Col: idx + 1}
		rest := line[idx+len(viewDirective):]
		class, predSrc, ok := strings.Cut(rest, ":")
		class = strings.TrimSpace(class)
		if !ok || class == "" || strings.TrimSpace(predSrc) == "" {
			diags = append(diags, Diagnostic{Pos: pos, Class: class, Code: DiagViewRescan,
				Msg: "malformed //view directive: want `//view Class: expr`"})
			continue
		}
		e, err := parser.ParseExpr(predSrc)
		if err != nil {
			diags = append(diags, Diagnostic{Pos: pos, Class: class, Code: DiagViewRescan,
				Msg: fmt.Sprintf("view predicate does not parse: %v", err)})
			continue
		}
		if _, err := prog.Info.AnalyzeExpr(class, e); err != nil {
			diags = append(diags, Diagnostic{Pos: pos, Class: class, Code: DiagViewRescan,
				Msg: fmt.Sprintf("view predicate does not check against %s: %v", class, err)})
			continue
		}
		vp := AnalyzeViewPred(class, e)
		if vp.Stable {
			continue
		}
		diags = append(diags, Diagnostic{Pos: pos, Class: class, Code: DiagViewRescan,
			Msg: fmt.Sprintf("subscription predicate forces a full %s rescan every tick: %s",
				class, strings.Join(vp.Reasons, "; "))})
	}
	return diags
}
