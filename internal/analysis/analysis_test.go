package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

func analyzeSrc(t *testing.T, name, src string) *analysis.Result {
	t.Helper()
	return analysis.Analyze(compileSrc(t, name, src))
}

// TestFoldClassification pins the commutativity/exactness lattice: every
// shipped combinator is commutative; float sum/avg and the order-sensitive
// minby/maxby tie-breaks are inexact, everything else folds exactly.
func TestFoldClassification(t *testing.T) {
	r := analyzeSrc(t, "guard", core.SrcGuard)
	g := r.Class("Guard")
	if g == nil {
		t.Fatal("no Guard class")
	}
	byName := map[string]analysis.Fold{}
	for i, f := range g.Folds {
		byName[g.Plan.Class.Effects[i].Name] = f
	}
	for name, f := range byName {
		if !f.Commutative {
			t.Errorf("%s: shipped combinators are all commutative", name)
		}
	}
	if byName["damage"].Exact {
		t.Error("damage (sum over numbers) must be inexact: float addition reassociates")
	}
	if byName["dx"].Exact {
		t.Error("dx (avg over numbers) must be inexact")
	}
	if !byName["flee"].Exact {
		t.Error("flee (max) must be exact")
	}

	rts := analyzeSrc(t, "rts", core.SrcRTS).Class("Soldier")
	// The maxby accumulator is a frame slot, not an effect, so check the
	// classifier through fig2's count-like sum instead plus rts damage.
	for i, f := range rts.Folds {
		name := rts.Plan.Class.Effects[i].Name
		if name == "damage" && f.Exact {
			t.Error("Soldier.damage (sum) must be inexact")
		}
	}
}

// TestCrossSelfEmit pins the vectorization hazard: rts soldiers emit
// damage into their own class through a ref target (pins every phase
// scalar), while flock boids only self-emit.
func TestCrossSelfEmit(t *testing.T) {
	if c := analyzeSrc(t, "rts", core.SrcRTS).Class("Soldier"); !c.CrossSelfEmit {
		t.Error("Soldier: foe.damage is a cross emission into the own class")
	}
	if c := analyzeSrc(t, "flock", core.SrcFlock).Class("Boid"); c.CrossSelfEmit {
		t.Error("Boid: only self-emissions, CrossSelfEmit must be false")
	}
	// Atomic bodies are exempt: the admission driver owns their ordering.
	if c := analyzeSrc(t, "market", core.SrcMarket).Class("Trader"); c.CrossSelfEmit {
		t.Error("Trader: cross emissions inside atomic blocks must not set CrossSelfEmit")
	}
}

// TestVectorizablePhases pins structural phase eligibility: vehicles (lets,
// ifs, self-emissions) vectorize; phases containing accum loops do not.
func TestVectorizablePhases(t *testing.T) {
	v := analyzeSrc(t, "vehicles", core.SrcVehicles).Class("Vehicle")
	anyVec := false
	for _, s := range v.Phases {
		anyVec = anyVec || s.Vectorizable
	}
	if !anyVec {
		t.Error("Vehicle: expected at least one structurally vectorizable phase")
	}
	f := analyzeSrc(t, "fig2", core.SrcFig2).Class("Unit")
	for p, s := range f.Phases {
		if s.Vectorizable {
			t.Errorf("Unit phase %d: accum-loop phases must not vectorize", p)
		}
	}
}

// TestStability pins the §3.1 constraint analysis on the marketplace: both
// atomic constraints are stable; `gold >= 0` reads an own-row rule-updated
// attr (no base), `seller.stock >= 0` reads through the stable seller ref
// (one cross base).
func TestStability(t *testing.T) {
	c := analyzeSrc(t, "market", core.SrcMarket).Class("Trader")
	if len(c.Atomics) != 1 {
		t.Fatalf("expected 1 atomic site, got %d", len(c.Atomics))
	}
	at := c.Atomics[0]
	if len(at.Constraints) != 2 {
		t.Fatalf("expected 2 constraints, got %d", len(at.Constraints))
	}
	for i, cons := range at.Constraints {
		if !cons.Stable {
			t.Errorf("constraint %d: must be stable", i)
		}
	}
	if rr := at.Constraints[0].RuleReads; len(rr) != 1 || rr[0].Base != nil || rr[0].Class != "Trader" {
		t.Errorf("gold >= 0: want one own-row rule read, got %+v", rr)
	}
	if rr := at.Constraints[1].RuleReads; len(rr) != 1 || rr[0].Base == nil {
		t.Errorf("seller.stock >= 0: want one cross-base rule read, got %+v", rr)
	}
}

// TestJoinFacts pins join-shape statics: flock's sight-box join has
// self-only range dims on both axes and is partitionable; a half-open
// range is recorded as such and the corpus's one-sided join is spotted.
func TestJoinFacts(t *testing.T) {
	b := analyzeSrc(t, "flock", core.SrcFlock).Class("Boid")
	if len(b.Joins) == 0 {
		t.Fatal("Boid: expected indexed joins")
	}
	for _, j := range b.Joins {
		if j.SelfOnlyDims == 0 || !j.Partitionable {
			t.Errorf("Boid join phase %d: want self-only partitionable dims, got %+v", j.Phase, j)
		}
		if len(j.HalfOpen) != 0 {
			t.Errorf("Boid join phase %d: two-sided boxes must not be half-open", j.Phase)
		}
	}
}
