// Package analysis is the unified static-analysis layer over compiled SGL
// programs — the paper's core claim (§2, §4) made concrete: because scripts
// compile to relational plans, the system can *analyze* them and derive
// every physical execution decision from one set of facts instead of
// scattering ad-hoc walks through the engine.
//
// For every class the framework computes, per phase, handler, update rule,
// accum join and atomic site:
//
//   - read sets (state attributes touched — own-row and cross-object —
//     frame slots, combined-effect reads, class extents, self identity);
//   - write sets (effect emissions with their target class, combinator and
//     source position; update-rule target attributes);
//   - fold classification per effect attribute: whether its ⊕ combinator
//     is commutative and whether folding is *exact* (bit-identical under
//     any contribution order) — the property that separates Min/Max/Count
//     from floating-point Sum/Avg;
//   - structural vectorizability per phase (the step-shape half of the
//     batch-kernel eligibility rule; expression compilability stays with
//     the vexpr compiler);
//   - the cross-self-emission hazard that pins a class to scalar execution;
//   - transaction constraint stability (read sets bounded over committed
//     state) with the ordered read lists the batched admission validator
//     needs;
//   - join partitionability preconditions for shared-nothing execution.
//
// The engine's vectorizer (engine/vector.go), transaction-site analyzer
// (engine/txnsite.go) and partitioned ghost derivation
// (engine/partition_view.go) all consume these results; `sglc vet`
// (vet.go) turns the same facts into author-facing diagnostics.
package analysis

import (
	"repro/internal/combinator"
	"repro/internal/compile"
	"repro/internal/schema"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// Result is the full analysis of one compiled program.
type Result struct {
	Prog    *compile.Program
	Classes map[string]*Class

	atomics map[*compile.AtomicStep]*Atomic
	joins   map[*compile.AccumStep]*Join
}

// Class aggregates every per-class analysis fact.
type Class struct {
	Name string
	Plan *compile.ClassPlan

	// HasRule marks state attributes with an expression update rule —
	// exactly the engine's classRT.hasRule.
	HasRule []bool

	// Folds classifies every effect attribute's ⊕ combinator, indexed by
	// effect attr.
	Folds []Fold

	Phases   []*Script // per waitNextTick phase (empty phases included)
	Handlers []*Script // per reactive handler
	Updates  []Update  // aligned with Plan.Updates

	// Atomics lists every atomic site in engine collection order (phases
	// in order, then handlers). Joins likewise for accum sites.
	Atomics []*Atomic
	Joins   []*Join

	// CrossSelfEmit reports a direct (non-transactional) targeted emission
	// into this same class anywhere in the run script: the fold-order
	// hazard that pins every phase of the class to scalar execution.
	CrossSelfEmit bool
}

// AttrRef names one state attribute of one class.
type AttrRef struct {
	Class string
	Attr  int
}

// ReadSet is the ordered, first-seen-deduplicated set of reads performed
// by a script fragment or expression.
type ReadSet struct {
	State   []AttrRef // state attrs read (own class or cross-object)
	Effects []int     // own-class combined-effect reads (update rules)
	Slots   []int     // frame slots read
	Extents []string  // class extents iterated
	Self    bool      // self() / self identity read
}

// Emit is one effect (or accumulator) contribution in the write set.
type Emit struct {
	Step      *compile.EmitStep
	Class     string
	Attr      int
	Comb      combinator.Kind // combinator.Invalid for accumulator emits
	Targeted  bool            // explicit target expression (cross-object)
	InAtomic  bool            // inside an atomic block (applies at admission)
	AccumSlot int             // >= 0: contribution to an accum accumulator
	SetInsert bool
	Pos       token.Pos
}

// Script is the analysis of one phase or handler body.
type Script struct {
	Phase int // phase index; -1 for handlers
	Reads ReadSet
	Emits []Emit

	// Vectorizable is the structural half of batch-kernel eligibility:
	// every step is a let, an if, or a self-targeted scalar emission of a
	// columnar payload kind. Expression compilability is still decided by
	// the vexpr compiler; the class-level CrossSelfEmit pin applies on top.
	Vectorizable bool
}

// Update is the analysis of one expression update rule.
type Update struct {
	AttrIdx int
	Kind    value.Kind
	// VecKind reports the target attribute's payload kind is columnar
	// (number/bool/ref) — the structural half of update-rule kernel
	// eligibility. String targets stay scalar even under a dictionary:
	// applying a staged code would bypass the column's string storage.
	VecKind bool
	Reads   ReadSet
}

// Fold classifies one effect attribute's ⊕ combinator.
type Fold struct {
	Comb combinator.Kind
	Kind value.Kind // declared payload kind
	// Commutative: the fold result is independent of contribution order as
	// a mathematical value (all combinators here are; MinBy/MaxBy only
	// through their deterministic key tie-break).
	Commutative bool
	// Exact: the folded bits are identical under any contribution order.
	// False exactly for floating-point Sum/Avg, where reassociation
	// changes rounding — the reason cross-object float emissions force
	// scalar execution order.
	Exact bool
}

// Join is the analysis of one accum site.
type Join struct {
	Step        *compile.AccumStep
	Class       string // executing class
	Phase       int    // phase index; -1 for handler sites
	SourceClass string

	ComputedSource bool // explicit set<ref> source expression
	Indexable      bool // predicate decomposed into an index-servable JoinSpec
	RangeDims      int
	EqDims         int
	SelfOnlyDims   int   // range dims whose bounds read only own-row state
	HalfOpen       []int // range dims bounded on one side only

	// Partitionable holds the static preconditions for deriving a bounded
	// interaction reach in shared-nothing partitioned execution: a
	// non-handler site (handlers probe post-update state the tick-start
	// ghosts would not cover) with at least one self-only range dimension.
	// The runtime halves — a spatial layout and finite evaluated bounds —
	// stay with the engine.
	Partitionable bool
}

// Atomic is the analysis of one atomic site.
type Atomic struct {
	Step        *compile.AtomicStep
	Class       string
	Phase       int // phase index; -1 for handler sites
	Constraints []Constraint
}

// Constraint is the stability analysis of one atomic constraint: whether
// its read set is bounded over committed state, and the ordered reads the
// batched admission validator must resolve.
type Constraint struct {
	Src ast.Expr

	// Stable reports the read set is bounded at build time: every
	// cross-object read goes through a base expression fixed for the whole
	// admission pass. Unstable constraints keep their site on the serial
	// admission loop.
	Stable bool

	Cols    []int // self state attrs read (walk order)
	Slots   []int // frame slots read (walk order)
	NeedIDs bool

	// RuleReads lists, in walk order, every read of a rule-updated state
	// attribute — the reads that must resolve through the tentative
	// post-update view. Base is nil for own-row column reads and the
	// stable base expression for cross-object reads.
	RuleReads []RuleRead
}

// RuleRead is one read of a rule-updated attribute inside a constraint.
type RuleRead struct {
	Class string
	Attr  int
	Base  ast.Expr // nil = own-row read
}

// Class returns the analysis for one class (nil if unknown).
func (r *Result) Class(name string) *Class { return r.Classes[name] }

// Atomic returns the analysis of one atomic site.
func (r *Result) Atomic(step *compile.AtomicStep) *Atomic { return r.atomics[step] }

// Join returns the analysis of one accum site.
func (r *Result) Join(step *compile.AccumStep) *Join { return r.joins[step] }

// Analyze runs the full dataflow analysis over a compiled program.
func Analyze(prog *compile.Program) *Result {
	r := &Result{
		Prog:    prog,
		Classes: make(map[string]*Class),
		atomics: make(map[*compile.AtomicStep]*Atomic),
		joins:   make(map[*compile.AccumStep]*Join),
	}
	// First pass: per-class shells with rule coverage and fold
	// classification, so cross-class walks (constraint stability, emission
	// fold lookups) can consult any class regardless of analysis order.
	for name, cp := range prog.Classes {
		c := &Class{Name: name, Plan: cp}
		c.HasRule = make([]bool, len(cp.Class.State))
		for _, u := range cp.Updates {
			c.HasRule[u.AttrIdx] = true
		}
		for _, e := range cp.Class.Effects {
			c.Folds = append(c.Folds, classifyFold(e.Comb, e.Kind))
		}
		r.Classes[name] = c
	}
	for _, c := range r.Classes {
		r.analyzeClassBody(c)
	}
	return r
}

func (r *Result) analyzeClassBody(c *Class) {
	cp, name := c.Plan, c.Name
	for _, u := range cp.Updates {
		kind := cp.Class.State[u.AttrIdx].Kind
		ui := Update{
			AttrIdx: u.AttrIdx,
			Kind:    kind,
			VecKind: kind == value.KindNumber || kind == value.KindBool || kind == value.KindRef,
		}
		collectExprReads(u.Src.Expr, &ui.Reads)
		c.Updates = append(c.Updates, ui)
	}

	for p, steps := range cp.Phases {
		s := &Script{Phase: p}
		r.collectSteps(c, s, steps, false)
		s.Vectorizable = len(steps) > 0 && structVec(cp.Class, name, steps)
		c.Phases = append(c.Phases, s)
	}
	for _, h := range cp.Handlers {
		s := &Script{Phase: -1}
		collectExprReads(h.Src.Cond, &s.Reads)
		r.collectSteps(c, s, h.Body, false)
		c.Handlers = append(c.Handlers, s)
	}

	// The cross-self-emission hazard: any phase (not handler) with a
	// direct targeted emission into the own class outside atomic blocks.
	for _, s := range c.Phases {
		for _, e := range s.Emits {
			if e.Targeted && e.Class == name && e.AccumSlot < 0 && !e.InAtomic {
				c.CrossSelfEmit = true
			}
		}
	}
}

// collectSteps walks one step list, recording reads, emissions, joins and
// atomic sites into the script and class. Mirrors the engine's site
// collection order exactly: nested structures are entered in step order,
// and a JoinSpec's Inner steps are walked in addition to the general-form
// body (they are separately compiled copies of the same contributions).
func (r *Result) collectSteps(c *Class, s *Script, steps []compile.Step, inAtomic bool) {
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.LetStep:
			collectExprReads(st.Src, &s.Reads)
		case *compile.IfStep:
			collectExprReads(st.CondSrc, &s.Reads)
			r.collectSteps(c, s, st.Then, inAtomic)
			r.collectSteps(c, s, st.Else, inAtomic)
		case *compile.EmitStep:
			collectExprReads(st.ValSrc, &s.Reads)
			if st.KeySrc != nil {
				collectExprReads(st.KeySrc, &s.Reads)
			}
			e := Emit{
				Step:      st,
				Class:     st.Class,
				Attr:      st.AttrIdx,
				Targeted:  st.TargetFn != nil,
				InAtomic:  inAtomic,
				AccumSlot: st.AccumSlot,
				SetInsert: st.SetInsert,
				Pos:       st.Pos,
			}
			if st.AccumSlot < 0 {
				if tc := r.Prog.Classes[st.Class]; tc != nil && st.AttrIdx < len(tc.Class.Effects) {
					e.Comb = tc.Class.Effects[st.AttrIdx].Comb
				}
			}
			s.Emits = append(s.Emits, e)
		case *compile.AccumStep:
			if st.SourceFn == nil {
				addExtent(&s.Reads, st.SourceClass)
			} else if st.Src != nil {
				collectExprReads(st.Src.Source, &s.Reads)
			}
			j := r.analyzeAccum(c, s, st)
			c.Joins = append(c.Joins, j)
			r.joins[st] = j
			r.collectSteps(c, s, st.Body, inAtomic)
			if st.Join != nil {
				r.collectSteps(c, s, st.Join.Inner, inAtomic)
			}
		case *compile.AtomicStep:
			a := r.analyzeAtomic(c, s, st)
			c.Atomics = append(c.Atomics, a)
			r.atomics[st] = a
			r.collectSteps(c, s, st.Body, true)
		}
	}
}

func (r *Result) analyzeAccum(c *Class, s *Script, st *compile.AccumStep) *Join {
	j := &Join{
		Step:           st,
		Class:          c.Name,
		Phase:          s.Phase,
		SourceClass:    st.SourceClass,
		ComputedSource: st.SourceFn != nil,
		Indexable:      st.Join != nil,
	}
	if st.Join != nil {
		j.RangeDims = len(st.Join.Ranges)
		j.EqDims = len(st.Join.Eqs)
		for d, rd := range st.Join.Ranges {
			if rd.SelfOnly {
				j.SelfOnlyDims++
			}
			if (len(rd.Lo) == 0) != (len(rd.Hi) == 0) {
				j.HalfOpen = append(j.HalfOpen, d)
			}
		}
	}
	j.Partitionable = j.Phase >= 0 && j.SelfOnlyDims > 0
	return j
}

// structVec reports the structural half of phase vectorizability: every
// step is a let, an if, or a self-targeted scalar emission of a columnar
// payload kind. Accum loops, atomic blocks, cross-object emissions,
// accumulator contributions and set effects keep the phase scalar.
func structVec(cls *schema.Class, className string, steps []compile.Step) bool {
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.LetStep:
		case *compile.IfStep:
			if !structVec(cls, className, st.Then) || !structVec(cls, className, st.Else) {
				return false
			}
		case *compile.EmitStep:
			if st.TargetFn != nil || st.SetInsert || st.AccumSlot >= 0 || st.Class != className {
				return false
			}
			// String effects are columnar too: the world dictionary gives
			// string payloads a numeric code lane, and the engine decodes at
			// the accumulator boundary. Only set effects (no payload lane)
			// stay scalar here.
			kind := cls.Effects[st.AttrIdx].Kind
			if kind != value.KindNumber && kind != value.KindBool && kind != value.KindRef && kind != value.KindString {
				return false
			}
		default: // AccumStep, AtomicStep
			return false
		}
	}
	return true
}

// classifyFold is the combinator lattice: every ⊕ is commutative as a
// mathematical value, but only order-insensitive *bit patterns* count as
// exact. Float Sum/Avg reassociate rounding, so they are inexact; MinBy/
// MaxBy are exact only through their deterministic key tie-break, which
// the engine preserves by fixing contribution order.
func classifyFold(comb combinator.Kind, kind value.Kind) Fold {
	f := Fold{Comb: comb, Kind: kind, Commutative: true, Exact: true}
	switch comb {
	case combinator.Sum, combinator.Avg:
		if kind == value.KindNumber {
			f.Exact = false
		}
	case combinator.MinBy, combinator.MaxBy:
		// Deterministic only under a fixed contribution order when keys
		// tie; the engine treats them as order-sensitive.
		f.Exact = false
	}
	return f
}

// --- read-set collection ---

func addState(rs *ReadSet, class string, attr int) {
	for _, a := range rs.State {
		if a.Class == class && a.Attr == attr {
			return
		}
	}
	rs.State = append(rs.State, AttrRef{Class: class, Attr: attr})
}

func addEffect(rs *ReadSet, attr int) {
	for _, a := range rs.Effects {
		if a == attr {
			return
		}
	}
	rs.Effects = append(rs.Effects, attr)
}

func addSlot(rs *ReadSet, slot int) {
	for _, s := range rs.Slots {
		if s == slot {
			return
		}
	}
	rs.Slots = append(rs.Slots, slot)
}

func addExtent(rs *ReadSet, class string) {
	for _, c := range rs.Extents {
		if c == class {
			return
		}
	}
	rs.Extents = append(rs.Extents, class)
}

// collectExprReads records every read an expression performs. Own-row
// state reads carry an empty class name (the executing class is implied by
// context); cross-object reads carry the referenced class.
func collectExprReads(e ast.Expr, rs *ReadSet) {
	switch e := e.(type) {
	case nil:
	case *ast.NumLit, *ast.BoolLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindStateAttr:
			addState(rs, "", e.Bind.AttrIdx)
		case ast.BindEffectAttr:
			addEffect(rs, e.Bind.AttrIdx)
		case ast.BindLocal, ast.BindIter:
			addSlot(rs, e.Bind.Slot)
		case ast.BindExtent:
			addExtent(rs, e.Bind.Class)
		case ast.BindSelf:
			rs.Self = true
		}
	case *ast.FieldExpr:
		addState(rs, e.Class, e.AttrIdx)
		collectExprReads(e.X, rs)
	case *ast.UnaryExpr:
		collectExprReads(e.X, rs)
	case *ast.BinaryExpr:
		collectExprReads(e.X, rs)
		collectExprReads(e.Y, rs)
	case *ast.CondExpr:
		collectExprReads(e.C, rs)
		collectExprReads(e.T, rs)
		collectExprReads(e.F, rs)
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			rs.Self = true
		}
		for _, arg := range e.Args {
			collectExprReads(arg, rs)
		}
	}
}
