package analysis

// Transaction-constraint stability (§3.1): every cross-object read in an
// atomic constraint must go through a base expression whose value cannot
// change during admission. Stable bases are committed-state reads — self,
// frame slots, ref attributes without update rules, and chains of those;
// their referents resolve once per transaction before conflict grouping,
// which is what makes disjoint groups provably commutative. A constraint
// reading through an unstable base (a rule-updated ref attribute, a
// computed ref) has an unbounded read set, so its whole site falls back to
// the serial admission loop.
//
// This walk is the structural half of the engine's former ad-hoc analysis
// (engine/txnsite.go); kernel compilability — whether each rule-updated
// read has a vectorized tentative-view column — stays with the engine,
// which resolves RuleReads against its compiled update-rule kernels.

import (
	"repro/internal/compile"
	"repro/internal/sgl/ast"
	"repro/internal/value"
)

func (r *Result) analyzeAtomic(c *Class, s *Script, st *compile.AtomicStep) *Atomic {
	a := &Atomic{Step: st, Class: c.Name, Phase: s.Phase}
	for _, src := range st.Srcs {
		collectExprReads(src, &s.Reads)
		a.Constraints = append(a.Constraints, r.analyzeConstraint(c, src))
	}
	return a
}

func (r *Result) analyzeConstraint(c *Class, src ast.Expr) Constraint {
	w := &consWalk{r: r, c: c, ok: true}
	w.walk(src)
	return Constraint{
		Src:       src,
		Stable:    w.ok,
		Cols:      w.cols,
		Slots:     w.slots,
		NeedIDs:   w.needIDs,
		RuleReads: w.ruleReads,
	}
}

// consWalk accumulates one constraint's reads in walk order.
type consWalk struct {
	r *Result
	c *Class

	ok        bool
	cols      []int
	slots     []int
	needIDs   bool
	ruleReads []RuleRead
}

// hasRule reports whether a class's state attribute has an expression
// update rule (false for unknown classes).
func (w *consWalk) hasRule(class string, attr int) bool {
	tc := w.r.Classes[class]
	return tc != nil && attr < len(tc.HasRule) && tc.HasRule[attr]
}

// addCol records an own-row state read; a rule-updated attribute must
// additionally resolve through the tentative post-update view.
func (w *consWalk) addCol(attr int) {
	w.cols = append(w.cols, attr)
	if w.c.HasRule[attr] {
		w.ruleReads = append(w.ruleReads, RuleRead{Class: w.c.Name, Attr: attr})
	}
}

func (w *consWalk) walk(e ast.Expr) {
	if !w.ok {
		return
	}
	switch e := e.(type) {
	case *ast.NumLit, *ast.BoolLit, *ast.StrLit, *ast.NullLit:
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindStateAttr:
			w.addCol(e.Bind.AttrIdx)
		case ast.BindLocal, ast.BindIter:
			w.slots = append(w.slots, e.Bind.Slot)
		case ast.BindSelf:
			w.needIDs = true
		default:
			// Effect attrs and class extents have no tentative-view story
			// inside constraints; keep the whole site on the serial loop.
			w.ok = false
		}
	case *ast.FieldExpr:
		w.walkField(e)
	case *ast.UnaryExpr:
		w.walk(e.X)
	case *ast.BinaryExpr:
		w.walk(e.X)
		w.walk(e.Y)
	case *ast.CondExpr:
		w.walk(e.C)
		w.walk(e.T)
		w.walk(e.F)
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			w.needIDs = true
		}
		for _, arg := range e.Args {
			w.walk(arg)
		}
	default:
		w.ok = false
	}
}

// walkField analyzes one cross-object read x.attr: the base x must be
// stable, and a rule-updated leaf joins the constraint's rule-read list
// with its base expression.
func (w *consWalk) walkField(e *ast.FieldExpr) {
	if !w.stableBase(e.X) {
		w.ok = false
		return
	}
	if w.r.Classes[e.Class] == nil {
		w.ok = false
		return
	}
	if w.hasRule(e.Class, e.AttrIdx) {
		w.ruleReads = append(w.ruleReads, RuleRead{Class: e.Class, Attr: e.AttrIdx, Base: e.X})
	}
}

// stableBase reports whether a base expression's value is fixed for the
// whole admission pass (it reads only committed state, the frame snapshot
// or self), registering the reads evaluating the base itself performs.
func (w *consWalk) stableBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.NullLit:
		return true
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindSelf:
			w.needIDs = true
			return true
		case ast.BindLocal, ast.BindIter:
			w.slots = append(w.slots, e.Bind.Slot)
			return true
		case ast.BindStateAttr:
			if e.Ty.Kind != value.KindRef || w.c.HasRule[e.Bind.AttrIdx] {
				return false
			}
			w.cols = append(w.cols, e.Bind.AttrIdx)
			return true
		}
		return false
	case *ast.FieldExpr:
		if !w.stableBase(e.X) {
			return false
		}
		return w.r.Classes[e.Class] != nil && e.Ty.Kind == value.KindRef &&
			!w.hasRule(e.Class, e.AttrIdx)
	case *ast.CallExpr:
		if e.Builtin == ast.BSelfFn {
			w.needIDs = true
			return true
		}
		return false
	}
	return false
}
