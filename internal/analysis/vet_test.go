package analysis_test

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
)

var update = flag.Bool("update", false, "rewrite vet golden files")

func compileSrc(t *testing.T, name, src string) *compile.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	info, err := sem.Analyze(p)
	if err != nil {
		t.Fatalf("%s: sem: %v", name, err)
	}
	prog, err := compile.CompileChecked(info)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return prog
}

func vetLines(t *testing.T, name, src string) string {
	t.Helper()
	var b strings.Builder
	for _, d := range analysis.Vet(compileSrc(t, name, src)) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func vetPerfLines(t *testing.T, name, src string) string {
	t.Helper()
	var b strings.Builder
	for _, d := range analysis.VetPerf(compileSrc(t, name, src)) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func vetViewLines(t *testing.T, name, src string) string {
	t.Helper()
	var b strings.Builder
	for _, d := range analysis.VetViews(compileSrc(t, name, src), src) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestVetCorpusGoldens pins every diagnostic's position, code and message
// on the testdata/vet corpus — one script per check, each triggering
// exactly one finding. Files named scalar_fallback* exercise the opt-in
// perf check (VetPerf) and files named view_* the //view directive check
// (VetViews) instead of the default set; both must vet clean under plain
// Vet.
func TestVetCorpusGoldens(t *testing.T) {
	files, err := filepath.Glob("../../testdata/vet/*.sgl")
	if err != nil || len(files) == 0 {
		t.Fatalf("no vet corpus found: %v", err)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".sgl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var got string
			switch {
			case strings.HasPrefix(name, "scalar_fallback"):
				if out := vetLines(t, name, string(src)); out != "" {
					t.Errorf("%s: perf corpus file must be clean under plain Vet, got:\n%s", name, out)
				}
				got = vetPerfLines(t, name, string(src))
			case strings.HasPrefix(name, "view_"):
				if out := vetLines(t, name, string(src)); out != "" {
					t.Errorf("%s: view corpus file must be clean under plain Vet, got:\n%s", name, out)
				}
				got = vetViewLines(t, name, string(src))
			default:
				got = vetLines(t, name, string(src))
			}
			if n := strings.Count(got, "\n"); n != 1 {
				t.Errorf("%s: want exactly 1 diagnostic, got %d:\n%s", name, n, got)
			}
			golden := strings.TrimSuffix(f, ".sgl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s: diagnostics diverged from golden\n got:\n%s want:\n%s",
					name, got, want)
			}
		})
	}
}

// TestShippedScenariosVetClean demands zero diagnostics on every shipped
// scenario: the core scenario sources, the testdata scripts outside the
// vet corpus, and the SGL programs embedded in the examples.
func TestShippedScenariosVetClean(t *testing.T) {
	srcs := map[string]string{
		"fig2":          core.SrcFig2,
		"rts":           core.SrcRTS,
		"market":        core.SrcMarket,
		"market-unsafe": core.SrcMarketUnsafe,
		"vehicles":      core.SrcVehicles,
		"traffic-prox":  core.SrcTraffic,
		"flock":         core.SrcFlock,
		"swarm":         core.SrcSwarm,
		"guard":         core.SrcGuard,
		"arena":         core.SrcArena,
	}
	scripts, err := filepath.Glob("../../testdata/*.sgl")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range scripts {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs["testdata/"+filepath.Base(f)] = string(b)
	}
	// SGL programs embedded as raw strings in example mains.
	mains, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	embedded := regexp.MustCompile("(?s)`([^`]*class [A-Z][^`]*)`")
	for _, f := range mains {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range embedded.FindAllStringSubmatch(string(b), -1) {
			key := "examples/" + filepath.Base(filepath.Dir(f))
			if i > 0 {
				key += string(rune('a' + i))
			}
			srcs[key] = m[1]
		}
	}
	for name, src := range srcs {
		if out := vetLines(t, name, src); out != "" {
			t.Errorf("%s: expected zero diagnostics, got:\n%s", name, out)
		}
	}
}
