package analysis

// Opt-in performance diagnostics: where does a program silently leave the
// fused kernel path? Unlike the default vet checks (which flag probable
// authoring mistakes and hold on every shipped scenario), scalar fallback
// is often a deliberate trade — set-valued state, ordered string logic —
// so these checks run only under `sglc vet -perf` / VetPerf.
//
// Each finding names the construct that forces row-at-a-time execution and
// why the kernel compiler cannot take it, mirroring the exact gates in
// internal/vexpr and the engine's plan builders (engine/vector.go,
// engine/join.go): a diagnostic fires iff the engine would fall back.

import (
	"sort"

	"repro/internal/compile"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// DiagScalarFallback is the code for every opt-in performance finding.
const DiagScalarFallback = "scalar-fallback"

// perfDict is a throwaway intern table satisfying vexpr.Dict: the perf
// checks only need to know whether an expression *compiles* under a
// dictionary, never the codes a real world would assign.
type perfDict map[string]float64

func (d perfDict) Code(s string) float64 {
	if c, ok := d[s]; ok {
		return c
	}
	c := float64(len(d))
	d[s] = c
	return c
}

// VetPerf analyzes the program and runs only the opt-in performance
// checks, returning findings in source order.
func VetPerf(prog *compile.Program) []Diagnostic {
	return VetPerfResult(Analyze(prog))
}

// VetPerfResult runs the performance checks over an existing analysis
// result.
func VetPerfResult(r *Result) []Diagnostic {
	v := &vetter{r: r}
	names := make([]string, 0, len(r.Classes))
	for n := range r.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v.checkScalarFallback(r.Classes[n])
	}
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i], v.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return v.diags
}

// checkScalarFallback reproduces the engine's kernel-eligibility decisions
// with a throwaway dictionary and reports every point where execution
// degrades to the scalar path.
func (v *vetter) checkScalarFallback(c *Class) {
	o := vexpr.Opts{Dict: perfDict{}, SlotOK: func(int) bool { return true }}

	// Update rules: non-columnar targets and non-compiling expressions.
	for i, u := range c.Plan.Updates {
		name := c.Plan.Class.State[u.AttrIdx].Name
		if !c.Updates[i].VecKind {
			v.add(u.Src.Expr.Position(), c.Name, DiagScalarFallback,
				"update rule for %s.%s targets a %s attribute; staged kernel writes cannot maintain %s storage, so the rule runs row-at-a-time",
				c.Name, name, c.Updates[i].Kind, c.Updates[i].Kind)
			continue
		}
		if _, ok := vexpr.CompileOpts(u.Src.Expr, o); !ok {
			v.add(u.Src.Expr.Position(), c.Name, DiagScalarFallback,
				"update rule for %s.%s runs through the scalar closure: %s",
				c.Name, name, exprWhy(u.Src.Expr))
		}
	}

	// The class-wide pin: a targeted emission into the own class forces
	// every phase scalar regardless of shape. Report it once, at the first
	// pinning emission, and skip the per-phase checks (they are moot).
	if c.CrossSelfEmit {
		pos := token.Pos{}
		for _, s := range c.Phases {
			for _, e := range s.Emits {
				if e.Targeted && e.Class == c.Name && e.AccumSlot < 0 && !e.InAtomic {
					if pos == (token.Pos{}) || lessPos(e.Pos, pos) {
						pos = e.Pos
					}
				}
			}
		}
		v.add(pos, c.Name, DiagScalarFallback,
			"targeted emission into own class %s pins every phase of the class to the scalar path: cross-object contributions must fold in program order with self-emissions",
			c.Name)
	} else {
		// Phases that pass the structural gate can still lose the kernel
		// path to an expression the compiler bails on.
		for p, s := range c.Phases {
			if !s.Vectorizable {
				continue
			}
			v.checkPhaseKernels(c, c.Plan.Phases[p], o)
		}
	}

	// Accum joins: residual conjuncts the batched driver cannot turn into
	// mask kernels, and string-keyed minby/maxby folds.
	for _, j := range c.Joins {
		if j.Step.Join == nil {
			continue
		}
		for _, src := range j.Step.Join.ResidualSrcs {
			if _, _, _, ok := vexpr.CompileAccumOpts(src, j.Step.IterSlot, o); !ok {
				v.add(src.Position(), c.Name, DiagScalarFallback,
					"join residual conjunct does not compile to a mask kernel (%s); the batched driver re-evaluates the interpreted predicate per candidate",
					exprWhy(src))
			}
		}
		v.checkStringFoldKeys(c, j.Step.Join.Inner)
	}
}

// checkPhaseKernels walks a structurally vectorizable phase and reports
// each expression the kernel compiler bails on — the engine then runs the
// whole phase row-at-a-time. Mirrors engine compileVecSteps.
func (v *vetter) checkPhaseKernels(c *Class, steps []compile.Step, o vexpr.Opts) {
	check := func(e ast.Expr, what string) {
		if e == nil {
			return
		}
		if _, ok := vexpr.CompileOpts(e, o); !ok {
			v.add(e.Position(), c.Name, DiagScalarFallback,
				"%s keeps the phase on the scalar path: %s", what, exprWhy(e))
		}
	}
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.LetStep:
			check(st.Src, "let expression")
		case *compile.IfStep:
			check(st.CondSrc, "if condition")
			v.checkPhaseKernels(c, st.Then, o)
			v.checkPhaseKernels(c, st.Else, o)
		case *compile.EmitStep:
			check(st.ValSrc, "emission payload")
			if st.KeySrc != nil && st.KeySrc.Type().Kind == value.KindString {
				v.add(st.KeySrc.Position(), c.Name, DiagScalarFallback,
					"minby/maxby key is a string; dictionary codes are interned in first-use order, not lexicographically, so the fold cannot run in a kernel")
			} else {
				check(st.KeySrc, "minby/maxby key")
			}
		}
	}
}

// checkStringFoldKeys flags string-typed minby/maxby keys inside a join's
// inner steps: the batched site keeps its probe but folds that emission
// through the interpreted closure.
func (v *vetter) checkStringFoldKeys(c *Class, steps []compile.Step) {
	for _, st := range steps {
		switch st := st.(type) {
		case *compile.IfStep:
			v.checkStringFoldKeys(c, st.Then)
			v.checkStringFoldKeys(c, st.Else)
		case *compile.EmitStep:
			if st.KeySrc != nil && st.KeySrc.Type().Kind == value.KindString {
				v.add(st.KeySrc.Position(), c.Name, DiagScalarFallback,
					"minby/maxby key is a string; dictionary codes are interned in first-use order, not lexicographically, so the fold cannot run in a kernel")
			}
		}
	}
}

// exprWhy names the first construct in an expression the kernel compiler
// bails on, in the terms of vexpr's gates.
func exprWhy(e ast.Expr) string {
	if w := kernelWhy(e); w != "" {
		return w
	}
	return "the expression falls outside the kernel subset"
}

func kernelWhy(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		switch e.Bind.Kind {
		case ast.BindExtent:
			return "it iterates the " + e.Bind.Class + " extent"
		case ast.BindIter:
			return "it reads an accum iteration variable"
		}
		if e.Ty.Kind == value.KindSet {
			return "set values have no columnar lane"
		}
	case *ast.FieldExpr:
		if e.Ty.Kind == value.KindSet {
			return "set values have no columnar lane"
		}
		return kernelWhy(e.X)
	case *ast.UnaryExpr:
		return kernelWhy(e.X)
	case *ast.BinaryExpr:
		if w := kernelWhy(e.X); w != "" {
			return w
		}
		if w := kernelWhy(e.Y); w != "" {
			return w
		}
		switch e.Op {
		case token.LT, token.LE, token.GT, token.GE:
			if e.X.Type().Kind == value.KindString || e.Y.Type().Kind == value.KindString {
				return "ordered string comparison has no code-lane form (dictionary codes are interned in first-use order, not lexicographically)"
			}
		}
	case *ast.CondExpr:
		if w := kernelWhy(e.C); w != "" {
			return w
		}
		if w := kernelWhy(e.T); w != "" {
			return w
		}
		return kernelWhy(e.F)
	case *ast.CallExpr:
		for _, a := range e.Args {
			if w := kernelWhy(a); w != "" {
				return w
			}
		}
		switch e.Builtin {
		case ast.BSize:
			return "size() folds a set"
		case ast.BContains:
			return "contains() probes a set"
		}
	}
	return ""
}
