package vexpr

import (
	"testing"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
)

// White-box tests for the optimization pipeline: superinstruction fusion
// shapes, invariant hoisting, and closure-chain specialization.

func numCol(attr int) *ast.Ident {
	return &ast.Ident{Name: "n", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: attr}, Ty: ast.NumberT}
}

func boolCol(attr int) *ast.Ident {
	return &ast.Ident{Name: "b", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: attr}, Ty: ast.BoolT}
}

func mustCompile(t *testing.T, e ast.Expr) *Prog {
	t.Helper()
	p, ok := Compile(e)
	if !ok {
		t.Fatalf("expression must compile: %s", ast.ExprString(e))
	}
	return p
}

func lastBatchOp(p *Prog) op { return p.batch[len(p.batch)-1].op }

func TestFuseShapes(t *testing.T) {
	bin := func(op token.Kind, x, y ast.Expr, ty ast.Type) ast.Expr {
		return &ast.BinaryExpr{Op: op, X: x, Y: y, Ty: ty}
	}
	call := func(b ast.Builtin, args ...ast.Expr) ast.Expr {
		return &ast.CallExpr{Builtin: b, Args: args, Ty: ast.NumberT}
	}
	cases := []struct {
		name  string
		e     ast.Expr
		want  op
		fused int
	}{
		{"mul-add", bin(token.PLUS, bin(token.STAR, numCol(0), numCol(1), ast.NumberT), numCol(0), ast.NumberT), opMulAdd, 1},
		{"add-mul", bin(token.PLUS, numCol(0), bin(token.STAR, numCol(0), numCol(1), ast.NumberT), ast.NumberT), opMulAdd, 1},
		{"mul-sub", bin(token.MINUS, bin(token.STAR, numCol(0), numCol(1), ast.NumberT), numCol(0), ast.NumberT), opMulSub, 1},
		{"sub-mul", bin(token.STAR, bin(token.MINUS, numCol(0), numCol(1), ast.NumberT), numCol(0), ast.NumberT), opSubMul, 1},
		{"abs-diff", call(ast.BAbs, bin(token.MINUS, numCol(0), numCol(1), ast.NumberT)), opAbsDiff, 1},
		{"clamp", call(ast.BMin, call(ast.BMax, numCol(0), numCol(1)), numCol(0)), opClamp, 1},
		{"clamp-rev", call(ast.BMin, numCol(0), call(ast.BMax, numCol(0), numCol(1))), opClamp, 1},
		{"cmp-sel", &ast.CondExpr{C: bin(token.LT, numCol(0), numCol(1), ast.BoolT), T: numCol(0), F: numCol(1), Ty: ast.NumberT}, opCmpSel, 1},
		{"and3", bin(token.ANDAND, bin(token.ANDAND, boolCol(2), boolCol(2), ast.BoolT), boolCol(2), ast.BoolT), opAnd3, 1},
		{"and4", bin(token.ANDAND, bin(token.ANDAND, bin(token.ANDAND, boolCol(2), boolCol(2), ast.BoolT), boolCol(2), ast.BoolT), boolCol(2), ast.BoolT), opAnd4, 2},
		{"or4", bin(token.OROR, boolCol(2), bin(token.OROR, boolCol(2), bin(token.OROR, boolCol(2), boolCol(2), ast.BoolT), ast.BoolT), ast.BoolT), opOr4, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustCompile(t, tc.e)
			if got := lastBatchOp(p); got != tc.want {
				t.Fatalf("output op = %d, want %d (program: %v)", got, tc.want, p.ins)
			}
			if p.fused != tc.fused {
				t.Fatalf("fused = %d, want %d", p.fused, tc.fused)
			}
			if p.chain == nil {
				t.Fatalf("short fused program must specialize")
			}
		})
	}
}

// TestKernelsReflectsFusion pins the cost-model retargeting: Kernels must
// count per-batch operators after fusion and invariant hoisting, so plan
// costs price the fused fast path.
func TestKernelsReflectsFusion(t *testing.T) {
	// n0*n1 + 2 → load, load, [mul+add fused], const hoisted: 3 per-batch.
	e := &ast.BinaryExpr{Op: token.PLUS,
		X:  &ast.BinaryExpr{Op: token.STAR, X: numCol(0), Y: numCol(1), Ty: ast.NumberT},
		Y:  &ast.NumLit{V: 2},
		Ty: ast.NumberT,
	}
	p := mustCompile(t, e)
	if got := p.Kernels(); got != 3 {
		t.Fatalf("Kernels() = %d, want 3 (2 loads + 1 fused mul-add)", got)
	}
	if len(p.inv) != 1 {
		t.Fatalf("constant must be hoisted to the invariant partition, inv=%v", p.inv)
	}
	np, ok := CompileOpts(e, Opts{NoOpt: true})
	if !ok {
		t.Fatal("NoOpt compile failed")
	}
	if got := np.Kernels(); got != 5 {
		t.Fatalf("NoOpt Kernels() = %d, want 5", got)
	}
	if np.FusedOps() != 0 || np.Specialized() {
		t.Fatal("NoOpt program must stay unfused and unspecialized")
	}
}

// TestInvariantHoisting pins the satellite fix: constant/broadcast registers
// are materialized once per Run (constants only on program switch), never
// once per batch.
func TestInvariantHoisting(t *testing.T) {
	e := &ast.BinaryExpr{Op: token.PLUS, X: numCol(0), Y: &ast.NumLit{V: 5}, Ty: ast.NumberT}
	p := mustCompile(t, e)
	if len(p.inv) != 1 || p.inv[0].op != opConst {
		t.Fatalf("expected one hoisted constant, inv=%v", p.inv)
	}

	n := batchSize + 100 // cross a batch seam
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i)
	}
	env := &Env{Cols: [][]float64{col}}
	out := make([]float64, n)
	var m Machine
	p.Run(&m, env, 0, n, out)
	for i, got := range out {
		if got != float64(i)+5 {
			t.Fatalf("row %d: got %v, want %v", i, got, float64(i)+5)
		}
	}

	// Scribble on the constant's scratch lane: a back-to-back Run of the
	// same program must NOT refill it (that is the hoist), so the scribble
	// shows up in row 0 of the next result.
	constReg := p.inv[0].dst
	m.regs[constReg][0] = 99
	p.Run(&m, env, 0, n, out)
	if out[0] != 99 || out[1] != 1+5 {
		t.Fatalf("same-program rerun refilled the hoisted constant: out[0]=%v out[1]=%v", out[0], out[1])
	}

	// After another program used the machine, the per-program slab cache
	// swaps p's registers back verbatim — still no refill, so the scribble
	// survives the switch too (join sites alternate programs per batch;
	// refilling on every switch was the cost this cache removes).
	other := mustCompile(t, &ast.BinaryExpr{Op: token.STAR, X: numCol(0), Y: numCol(0), Ty: ast.NumberT})
	other.Run(&m, env, 0, n, out)
	p.Run(&m, env, 0, n, out)
	if out[0] != 99 || out[1] != 1+5 {
		t.Fatalf("program-switch rerun refilled the cached constant: out[0]=%v out[1]=%v", out[0], out[1])
	}

	// Only losing the cached slab (eviction under synthetic many-program
	// loads) forces re-materialization.
	m.states = nil
	m.lastProg = nil
	p.Run(&m, env, 0, n, out)
	for i, got := range out {
		if got != float64(i)+5 {
			t.Fatalf("post-eviction rerun row %d: got %v, want %v", i, got, float64(i)+5)
		}
	}
}

// TestInvariantOnlyProgram covers programs whose output is itself
// batch-invariant (a bare literal): Run must still fill every row.
func TestInvariantOnlyProgram(t *testing.T) {
	p := mustCompile(t, &ast.NumLit{V: 7})
	if p.outBatch {
		t.Fatal("literal program must have an invariant output")
	}
	n := batchSize + 33
	out := make([]float64, n)
	var m Machine
	p.Run(&m, &Env{}, 0, n, out)
	for i, got := range out {
		if got != 7 {
			t.Fatalf("row %d: got %v, want 7", i, got)
		}
	}
}
