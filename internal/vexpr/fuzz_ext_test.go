package vexpr_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// Extended differential fuzz: dictionary-encoded string equality, the
// fused-chain shapes the peephole pass targets (mul-add, clamp, cmp-select,
// abs-diff, mask chains), and adversarial numeric lanes (NaN, ±0, ±Inf,
// dangling refs). Results must stay bitwise identical to the scalar closure
// evaluator.

// The extended fuzz world adds a string attribute on top of the layout of
// vexpr_test.go.
const (
	xAttrN0 = 0 // number
	xAttrN1 = 1 // number
	xAttrB0 = 2 // bool
	xAttrR0 = 3 // ref<C>
	xAttrS0 = 4 // string
)

var xAttrKinds = []value.Kind{value.KindNumber, value.KindNumber, value.KindBool, value.KindRef, value.KindString}

var fuzzStrings = []string{"", "red", "blue", "green", "αβ"}

// testDict is a minimal vexpr.Dict: interning map with "" pre-interned as
// code 0, mirroring table.Dict.
type testDict struct {
	codes map[string]float64
	strs  []string
}

func newTestDict() *testDict {
	d := &testDict{codes: map[string]float64{}}
	d.Code("")
	return d
}

func (d *testDict) Code(s string) float64 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	c := float64(len(d.strs))
	d.codes[s] = c
	d.strs = append(d.strs, s)
	return c
}

type xWorld struct {
	cols [][]float64 // per attr (string attr holds dict codes)
	strs []string    // per row, the string attr's value
	ids  []float64
	byID map[value.ID]int
	dict *testDict
}

// adversarialNum draws from a pool heavy in IEEE edge cases.
func adversarialNum(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return math.NaN()
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return 0
	case 3:
		return math.Inf(1)
	case 4:
		return math.Inf(-1)
	default:
		return math.Trunc(rng.Float64()*200-100) / 4
	}
}

func newXWorld(rng *rand.Rand, n int, dict *testDict) *xWorld {
	w := &xWorld{byID: make(map[value.ID]int), dict: dict}
	w.cols = make([][]float64, len(xAttrKinds))
	for a := range w.cols {
		w.cols[a] = make([]float64, n)
	}
	w.strs = make([]string, n)
	w.ids = make([]float64, n)
	for r := 0; r < n; r++ {
		id := value.ID(r + 1)
		w.ids[r] = float64(id)
		w.byID[id] = r
		w.cols[xAttrN0][r] = adversarialNum(rng)
		w.cols[xAttrN1][r] = adversarialNum(rng)
		w.cols[xAttrB0][r] = float64(rng.Intn(2))
		switch rng.Intn(4) {
		case 0:
			w.cols[xAttrR0][r] = float64(value.NullID)
		case 1:
			w.cols[xAttrR0][r] = float64(n + 50) // dangling
		default:
			w.cols[xAttrR0][r] = float64(rng.Intn(n) + 1)
		}
		s := fuzzStrings[rng.Intn(len(fuzzStrings))]
		w.strs[r] = s
		w.cols[xAttrS0][r] = dict.Code(s)
	}
	return w
}

func (w *xWorld) colValue(attr, row int) value.Value {
	f := w.cols[attr][row]
	switch xAttrKinds[attr] {
	case value.KindBool:
		return value.Bool(f != 0)
	case value.KindRef:
		return value.Ref(value.ID(f))
	case value.KindString:
		return value.Str(w.strs[row])
	default:
		return value.Num(f)
	}
}

type xRowReader struct {
	w   *xWorld
	row int
}

func (r xRowReader) Attr(i int) value.Value { return r.w.colValue(i, r.row) }

func (w *xWorld) StateValue(class string, id value.ID, attrIdx int) (value.Value, bool) {
	row, ok := w.byID[id]
	if !ok {
		return value.Value{}, false
	}
	return w.colValue(attrIdx, row), true
}

func (w *xWorld) gather(class string, attrIdx int, refs, out []float64, zero float64) {
	for i, f := range refs {
		row, ok := w.byID[value.ID(f)]
		if !ok {
			out[i] = zero
			continue
		}
		out[i] = w.cols[attrIdx][row]
	}
}

// xGen generates typed ASTs biased toward fused-chain shapes and string
// predicates.
type xGen struct {
	rng   *rand.Rand
	depth int
}

func xIdent(attr int) *ast.Ident {
	ty := ast.Type{Kind: xAttrKinds[attr]}
	if ty.Kind == value.KindRef {
		ty.RefClass = "C"
	}
	return &ast.Ident{Name: "a", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: attr}, Ty: ty}
}

func (g *xGen) num(d int) ast.Expr {
	if d >= g.depth {
		if g.rng.Intn(3) == 0 {
			return &ast.NumLit{V: math.Trunc(g.rng.Float64()*20 - 10)}
		}
		return xIdent([]int{xAttrN0, xAttrN1}[g.rng.Intn(2)])
	}
	switch g.rng.Intn(8) {
	case 0: // mul-add / add-mul
		mul := &ast.BinaryExpr{Op: token.STAR, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
		if g.rng.Intn(2) == 0 {
			return &ast.BinaryExpr{Op: token.PLUS, X: mul, Y: g.num(d + 1), Ty: ast.NumberT}
		}
		return &ast.BinaryExpr{Op: token.PLUS, X: g.num(d + 1), Y: mul, Ty: ast.NumberT}
	case 1: // mul-sub / sub-mul
		if g.rng.Intn(2) == 0 {
			mul := &ast.BinaryExpr{Op: token.STAR, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
			return &ast.BinaryExpr{Op: token.MINUS, X: mul, Y: g.num(d + 1), Ty: ast.NumberT}
		}
		sub := &ast.BinaryExpr{Op: token.MINUS, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
		return &ast.BinaryExpr{Op: token.STAR, X: sub, Y: g.num(d + 1), Ty: ast.NumberT}
	case 2: // clamp, both as builtin and as min∘max
		if g.rng.Intn(2) == 0 {
			return &ast.CallExpr{Name: "clamp", Builtin: ast.BClamp, Args: []ast.Expr{g.num(d + 1), g.num(d + 1), g.num(d + 1)}, Ty: ast.NumberT}
		}
		max := &ast.CallExpr{Name: "max", Builtin: ast.BMax, Args: []ast.Expr{g.num(d + 1), g.num(d + 1)}, Ty: ast.NumberT}
		args := []ast.Expr{max, g.num(d + 1)}
		if g.rng.Intn(2) == 0 {
			args = []ast.Expr{args[1], args[0]}
		}
		return &ast.CallExpr{Name: "min", Builtin: ast.BMin, Args: args, Ty: ast.NumberT}
	case 3: // cmp-select
		return &ast.CondExpr{C: g.cmp(d + 1), T: g.num(d + 1), F: g.num(d + 1), Ty: ast.NumberT}
	case 4: // abs-diff
		sub := &ast.BinaryExpr{Op: token.MINUS, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
		return &ast.CallExpr{Name: "abs", Builtin: ast.BAbs, Args: []ast.Expr{sub}, Ty: ast.NumberT}
	case 5:
		return &ast.BinaryExpr{Op: token.SLASH, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
	case 6:
		return &ast.FieldExpr{X: g.ref(d + 1), Name: "n0", AttrIdx: xAttrN0, Class: "C", Ty: ast.NumberT}
	default:
		op := []token.Kind{token.PLUS, token.MINUS, token.STAR}[g.rng.Intn(3)]
		return &ast.BinaryExpr{Op: op, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
	}
}

func (g *xGen) cmp(d int) ast.Expr {
	op := []token.Kind{token.LT, token.LE, token.GT, token.GE, token.EQ, token.NEQ}[g.rng.Intn(6)]
	return &ast.BinaryExpr{Op: op, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.BoolT}
}

func (g *xGen) str(d int) ast.Expr {
	if d >= g.depth || g.rng.Intn(2) == 0 {
		if g.rng.Intn(2) == 0 {
			return &ast.StrLit{V: fuzzStrings[g.rng.Intn(len(fuzzStrings))]}
		}
		return xIdent(xAttrS0)
	}
	switch g.rng.Intn(2) {
	case 0:
		return &ast.CondExpr{C: g.boolean(d + 1), T: g.str(d + 1), F: g.str(d + 1), Ty: ast.StringT}
	default:
		// Cross-object string read through a ref: dangling refs yield "".
		return &ast.FieldExpr{X: g.ref(d + 1), Name: "s0", AttrIdx: xAttrS0, Class: "C", Ty: ast.StringT}
	}
}

func (g *xGen) boolean(d int) ast.Expr {
	if d >= g.depth {
		return xIdent(xAttrB0)
	}
	switch g.rng.Intn(6) {
	case 0: // string predicate — the dictionary-encoded lane
		op := []token.Kind{token.EQ, token.NEQ}[g.rng.Intn(2)]
		return &ast.BinaryExpr{Op: op, X: g.str(d + 1), Y: g.str(d + 1), Ty: ast.BoolT}
	case 1: // mask chain (fused to and3/and4/or3/or4)
		op := []token.Kind{token.ANDAND, token.OROR}[g.rng.Intn(2)]
		e := g.boolean(d + 1)
		for i := 1 + g.rng.Intn(3); i > 0; i-- {
			e = &ast.BinaryExpr{Op: op, X: e, Y: g.boolean(d + 1), Ty: ast.BoolT}
		}
		return e
	case 2:
		return &ast.UnaryExpr{Op: token.NOT, X: g.boolean(d + 1), Ty: ast.BoolT}
	case 3:
		return &ast.CondExpr{C: g.boolean(d + 1), T: g.boolean(d + 1), F: g.boolean(d + 1), Ty: ast.BoolT}
	default:
		return g.cmp(d + 1)
	}
}

func (g *xGen) ref(d int) ast.Expr {
	refT := ast.RefT("C")
	if d >= g.depth {
		if g.rng.Intn(4) == 0 {
			return &ast.NullLit{Ty: refT}
		}
		return xIdent(xAttrR0)
	}
	return &ast.FieldExpr{X: g.ref(d + 1), Name: "r0", AttrIdx: xAttrR0, Class: "C", Ty: refT}
}

// xPayload maps a scalar value to its columnar payload, encoding strings
// through the dictionary.
func xPayload(d *testDict, v value.Value) float64 {
	switch v.Kind() {
	case value.KindBool:
		if v.AsBool() {
			return 1
		}
		return 0
	case value.KindRef:
		return float64(v.AsRef())
	case value.KindString:
		return d.Code(v.AsString())
	default:
		return v.AsNumber()
	}
}

// TestDifferentialFuzzExt asserts bitwise identity between the fused,
// specialized, dictionary-aware kernels and the scalar closure evaluator,
// and between optimized and NoOpt compilation of the same program.
func TestDifferentialFuzzExt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	compiled, withStrings := 0, 0
	for trial := 0; trial < 500; trial++ {
		dict := newTestDict()
		// Compile first so literal interning precedes world encoding —
		// mirrors the engine, where programs are compiled at world build.
		g := &xGen{rng: rng, depth: 1 + rng.Intn(4)}
		var e ast.Expr
		switch trial % 3 {
		case 0:
			e = g.num(0)
		case 1:
			e = g.boolean(0)
		default:
			e = g.str(0)
			withStrings++
		}
		prog, ok := vexpr.CompileOpts(e, vexpr.Opts{Dict: dict})
		if !ok {
			t.Fatalf("trial %d: dict compile must not bail: %s", trial, ast.ExprString(e))
		}
		noopt, ok := vexpr.CompileOpts(e, vexpr.Opts{Dict: dict, NoOpt: true})
		if !ok {
			t.Fatalf("trial %d: NoOpt compile must not bail", trial)
		}
		compiled++
		w := newXWorld(rng, 3+rng.Intn(80), dict)
		fn := expr.Compile(e)
		n := len(w.ids)
		env := &vexpr.Env{Cols: w.cols, IDs: w.ids, Gather: w.gather}
		out := make([]float64, n)
		ref := make([]float64, n)
		var m, m2 vexpr.Machine
		prog.Run(&m, env, 0, n, out)
		noopt.Run(&m2, env, 0, n, ref)

		ctx := expr.Ctx{W: w, Class: "C"}
		for r := 0; r < n; r++ {
			ctx.SelfID = value.ID(w.ids[r])
			ctx.Self = xRowReader{w: w, row: r}
			want := xPayload(dict, fn(&ctx))
			if !sameFloat(out[r], want) {
				t.Fatalf("trial %d row %d: fused %v, scalar %v\nexpr: %s", trial, r, out[r], want, ast.ExprString(e))
			}
			if !sameFloat(ref[r], want) {
				t.Fatalf("trial %d row %d: NoOpt %v, scalar %v\nexpr: %s", trial, r, ref[r], want, ast.ExprString(e))
			}
		}
	}
	if withStrings < 100 {
		t.Fatalf("only %d string-rooted trials; generator too narrow", withStrings)
	}
	_ = compiled
}

// TestStringPredicateCompiles pins the dictionary contract: string ==/!=
// compiles with a dict, bails without one, and ordered string comparisons
// always bail (codes are not lexicographic).
func TestStringPredicateCompiles(t *testing.T) {
	pred := func(op token.Kind) ast.Expr {
		return &ast.BinaryExpr{Op: op, X: xIdent(xAttrS0), Y: &ast.StrLit{V: "red"}, Ty: ast.BoolT}
	}
	dict := newTestDict()
	if _, ok := vexpr.CompileOpts(pred(token.NEQ), vexpr.Opts{Dict: dict}); !ok {
		t.Fatal("string != must compile with a dictionary")
	}
	if _, ok := vexpr.CompileOpts(pred(token.EQ), vexpr.Opts{}); ok {
		t.Fatal("string == must bail without a dictionary")
	}
	if _, ok := vexpr.CompileOpts(pred(token.LT), vexpr.Opts{Dict: dict}); ok {
		t.Fatal("ordered string comparison must bail even with a dictionary")
	}
}
