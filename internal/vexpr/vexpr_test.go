package vexpr_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
	"repro/internal/vexpr"
)

// The fuzz world: one class "C" with numeric, bool and ref state attributes
// stored as raw float64 columns, mirroring the engine's table layout.
const (
	attrN0 = 0 // number
	attrN1 = 1 // number
	attrB0 = 2 // bool
	attrR0 = 3 // ref<C>
)

var attrKinds = []value.Kind{value.KindNumber, value.KindNumber, value.KindBool, value.KindRef}

type world struct {
	cols  [][]float64 // per attr, per row
	ids   []float64   // row -> object id
	byID  map[value.ID]int
	fx    [][]float64 // per effect attr, per row (combined values)
	slots [][]float64
}

func newWorld(rng *rand.Rand, n int) *world {
	w := &world{byID: make(map[value.ID]int)}
	w.cols = make([][]float64, len(attrKinds))
	for a := range w.cols {
		w.cols[a] = make([]float64, n)
	}
	w.ids = make([]float64, n)
	for r := 0; r < n; r++ {
		id := value.ID(r + 1)
		w.ids[r] = float64(id)
		w.byID[id] = r
		w.cols[attrN0][r] = math.Trunc(rng.Float64()*200-100) / 4
		w.cols[attrN1][r] = math.Trunc(rng.Float64()*20-10) / 2
		w.cols[attrB0][r] = float64(rng.Intn(2))
		// Refs: mix of valid, null and dangling ids.
		switch rng.Intn(4) {
		case 0:
			w.cols[attrR0][r] = float64(value.NullID)
		case 1:
			w.cols[attrR0][r] = float64(n + 50) // dangling
		default:
			w.cols[attrR0][r] = float64(rng.Intn(n) + 1)
		}
	}
	w.fx = [][]float64{make([]float64, n)}
	for r := range w.fx[0] {
		w.fx[0][r] = math.Trunc(rng.Float64()*40-20) / 2
	}
	w.slots = [][]float64{make([]float64, n)}
	for r := range w.slots[0] {
		w.slots[0][r] = math.Trunc(rng.Float64() * 16)
	}
	return w
}

// scalar-side adapters

type rowReader struct {
	w   *world
	row int
}

func (r rowReader) Attr(i int) value.Value { return colValue(r.w, i, r.row) }

func colValue(w *world, attr, row int) value.Value {
	f := w.cols[attr][row]
	switch attrKinds[attr] {
	case value.KindBool:
		return value.Bool(f != 0)
	case value.KindRef:
		return value.Ref(value.ID(f))
	default:
		return value.Num(f)
	}
}

func (w *world) StateValue(class string, id value.ID, attrIdx int) (value.Value, bool) {
	row, ok := w.byID[id]
	if !ok {
		return value.Value{}, false
	}
	return colValue(w, attrIdx, row), true
}

type fxReader struct {
	w   *world
	row int
}

func (r fxReader) EffectValue(attrIdx int) (value.Value, bool) {
	return value.Num(r.w.fx[attrIdx][r.row]), true
}

func (w *world) gather(class string, attrIdx int, refs, out []float64, zero float64) {
	for i, f := range refs {
		row, ok := w.byID[value.ID(f)]
		if !ok {
			out[i] = zero
			continue
		}
		out[i] = w.cols[attrIdx][row]
	}
}

// random typed-AST generator

type gen struct {
	rng      *rand.Rand
	depth    int
	withFx   bool
	withSlot bool
}

func ident(attr int) *ast.Ident {
	ty := ast.Type{Kind: attrKinds[attr]}
	if ty.Kind == value.KindRef {
		ty.RefClass = "C"
	}
	return &ast.Ident{Name: "a", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: attr}, Ty: ty}
}

func (g *gen) num(d int) ast.Expr {
	if d >= g.depth {
		switch g.rng.Intn(3) {
		case 0:
			return &ast.NumLit{V: math.Trunc(g.rng.Float64()*20 - 10)}
		default:
			return ident([]int{attrN0, attrN1}[g.rng.Intn(2)])
		}
	}
	switch g.rng.Intn(12) {
	case 0:
		return &ast.UnaryExpr{Op: token.MINUS, X: g.num(d + 1), Ty: ast.NumberT}
	case 1:
		return &ast.BinaryExpr{Op: token.SLASH, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
	case 2:
		return &ast.BinaryExpr{Op: token.PERCENT, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
	case 3:
		return &ast.CondExpr{C: g.boolean(d + 1), T: g.num(d + 1), F: g.num(d + 1), Ty: ast.NumberT}
	case 4:
		return &ast.CallExpr{Name: "clamp", Builtin: ast.BClamp, Args: []ast.Expr{g.num(d + 1), g.num(d + 1), g.num(d + 1)}, Ty: ast.NumberT}
	case 5:
		return &ast.CallExpr{Name: "dist", Builtin: ast.BDist, Args: []ast.Expr{g.num(d + 1), g.num(d + 1), g.num(d + 1), g.num(d + 1)}, Ty: ast.NumberT}
	case 6:
		name := []string{"abs", "floor", "ceil", "sqrt"}[g.rng.Intn(4)]
		return &ast.CallExpr{Name: name, Builtin: ast.BuiltinByName[name], Args: []ast.Expr{g.num(d + 1)}, Ty: ast.NumberT}
	case 7:
		name := []string{"min", "max"}[g.rng.Intn(2)]
		return &ast.CallExpr{Name: name, Builtin: ast.BuiltinByName[name], Args: []ast.Expr{g.num(d + 1), g.num(d + 1)}, Ty: ast.NumberT}
	case 8:
		return &ast.CallExpr{Name: "id", Builtin: ast.BID, Args: []ast.Expr{g.ref(d + 1)}, Ty: ast.NumberT}
	case 9:
		// Cross-object numeric read through a ref.
		return &ast.FieldExpr{X: g.ref(d + 1), Name: "n0", AttrIdx: attrN0, Class: "C", Ty: ast.NumberT}
	case 10:
		if g.withFx {
			return &ast.Ident{Name: "fx0", Bind: ast.Binding{Kind: ast.BindEffectAttr, AttrIdx: 0}, Ty: ast.NumberT}
		}
		if g.withSlot {
			return &ast.Ident{Name: "s0", Bind: ast.Binding{Kind: ast.BindLocal, Slot: 0}, Ty: ast.NumberT}
		}
		fallthrough
	default:
		op := []token.Kind{token.PLUS, token.MINUS, token.STAR}[g.rng.Intn(3)]
		return &ast.BinaryExpr{Op: op, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.NumberT}
	}
}

func (g *gen) boolean(d int) ast.Expr {
	if d >= g.depth {
		if g.rng.Intn(2) == 0 {
			return &ast.BoolLit{V: g.rng.Intn(2) == 0}
		}
		return ident(attrB0)
	}
	switch g.rng.Intn(7) {
	case 0:
		return &ast.UnaryExpr{Op: token.NOT, X: g.boolean(d + 1), Ty: ast.BoolT}
	case 1:
		op := []token.Kind{token.ANDAND, token.OROR}[g.rng.Intn(2)]
		return &ast.BinaryExpr{Op: op, X: g.boolean(d + 1), Y: g.boolean(d + 1), Ty: ast.BoolT}
	case 2:
		op := []token.Kind{token.EQ, token.NEQ}[g.rng.Intn(2)]
		x, y := g.ref(d+1), g.ref(d+1)
		return &ast.BinaryExpr{Op: op, X: x, Y: y, Ty: ast.BoolT}
	case 3:
		return &ast.CondExpr{C: g.boolean(d + 1), T: g.boolean(d + 1), F: g.boolean(d + 1), Ty: ast.BoolT}
	default:
		op := []token.Kind{token.LT, token.LE, token.GT, token.GE, token.EQ, token.NEQ}[g.rng.Intn(6)]
		return &ast.BinaryExpr{Op: op, X: g.num(d + 1), Y: g.num(d + 1), Ty: ast.BoolT}
	}
}

func (g *gen) ref(d int) ast.Expr {
	refT := ast.RefT("C")
	if d >= g.depth {
		if g.rng.Intn(4) == 0 {
			return &ast.NullLit{Ty: refT}
		}
		return ident(attrR0)
	}
	switch g.rng.Intn(3) {
	case 0:
		return &ast.CondExpr{C: g.boolean(d + 1), T: g.ref(d + 1), F: g.ref(d + 1), Ty: refT}
	case 1:
		return &ast.FieldExpr{X: g.ref(d + 1), Name: "r0", AttrIdx: attrR0, Class: "C", Ty: refT}
	default:
		return &ast.Ident{Name: "self", Bind: ast.Binding{Kind: ast.BindSelf}, Ty: refT}
	}
}

// payload extracts the columnar float64 representation of a scalar value.
func payload(v value.Value) float64 {
	switch v.Kind() {
	case value.KindBool:
		if v.AsBool() {
			return 1
		}
		return 0
	case value.KindRef:
		return float64(v.AsRef())
	default:
		return v.AsNumber()
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestDifferentialFuzz generates random typed expressions and random worlds
// and asserts that the batch kernels produce bit-identical payloads to the
// scalar closure evaluator on every row.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	compiled, skipped := 0, 0
	for trial := 0; trial < 400; trial++ {
		w := newWorld(rng, 3+rng.Intn(60))
		g := &gen{rng: rng, depth: 1 + rng.Intn(4), withFx: trial%3 == 0, withSlot: trial%3 == 1}
		var e ast.Expr
		switch trial % 3 {
		case 0, 1:
			e = g.num(0)
		default:
			e = g.boolean(0)
		}
		prog, ok := vexpr.CompileWithSlots(e, func(slot int) bool { return g.withSlot && slot == 0 })
		if !ok {
			skipped++
			continue
		}
		compiled++
		fn := expr.Compile(e)
		n := len(w.ids)
		env := &vexpr.Env{Cols: w.cols, Fx: w.fx, IDs: w.ids, Slots: w.slots, Gather: w.gather}
		out := make([]float64, n)
		var m vexpr.Machine
		prog.Run(&m, env, 0, n, out)

		ctx := expr.Ctx{W: w, Class: "C", Frame: make([]value.Value, 1)}
		for r := 0; r < n; r++ {
			ctx.SelfID = value.ID(w.ids[r])
			ctx.Self = rowReader{w: w, row: r}
			ctx.Effects = fxReader{w: w, row: r}
			ctx.Frame[0] = value.Num(w.slots[0][r])
			want := payload(fn(&ctx))
			if !sameFloat(out[r], want) {
				t.Fatalf("trial %d row %d: vectorized %v, scalar %v\nexpr: %s", trial, r, out[r], want, ast.ExprString(e))
			}
		}
	}
	if compiled < 200 {
		t.Fatalf("only %d/%d random expressions compiled to kernels (%d skipped); generator too narrow", compiled, compiled+skipped, skipped)
	}
}

// TestCompileRejectsNonColumnar pins the fallback contract: strings, sets,
// iteration variables and extents must fail vectorized compilation rather
// than miscompile.
func TestCompileRejectsNonColumnar(t *testing.T) {
	cases := []ast.Expr{
		&ast.StrLit{V: "x"},
		&ast.Ident{Name: "it", Bind: ast.Binding{Kind: ast.BindIter, Slot: 0}, Ty: ast.RefT("C")},
		&ast.Ident{Name: "C", Bind: ast.Binding{Kind: ast.BindExtent, Class: "C"}},
		&ast.CallExpr{Name: "size", Builtin: ast.BSize, Args: []ast.Expr{&ast.Ident{Name: "s", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: 0}, Ty: ast.SetT(ast.NumberT)}}, Ty: ast.NumberT},
		// local slot without slot vectors available
		&ast.Ident{Name: "v", Bind: ast.Binding{Kind: ast.BindLocal, Slot: 2}, Ty: ast.NumberT},
		// string equality
		&ast.BinaryExpr{Op: token.EQ, X: &ast.StrLit{V: "a"}, Y: &ast.StrLit{V: "b"}, Ty: ast.BoolT},
	}
	for i, e := range cases {
		if _, ok := vexpr.Compile(e); ok {
			t.Errorf("case %d: expected compilation to fail", i)
		}
	}
}

// TestBatchBoundaries ensures results are identical across batch seams by
// evaluating an extent larger than one batch.
func TestBatchBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := newWorld(rng, 3000)
	e := &ast.BinaryExpr{Op: token.PLUS,
		X:  ident(attrN0),
		Y:  &ast.FieldExpr{X: ident(attrR0), Name: "n1", AttrIdx: attrN1, Class: "C", Ty: ast.NumberT},
		Ty: ast.NumberT,
	}
	prog, ok := vexpr.Compile(e)
	if !ok {
		t.Fatal("expression must compile")
	}
	fn := expr.Compile(e)
	n := len(w.ids)
	out := make([]float64, n)
	var m vexpr.Machine
	prog.Run(&m, &vexpr.Env{Cols: w.cols, IDs: w.ids, Gather: w.gather}, 0, n, out)
	ctx := expr.Ctx{W: w, Class: "C"}
	for r := 0; r < n; r++ {
		ctx.SelfID = value.ID(w.ids[r])
		ctx.Self = rowReader{w: w, row: r}
		if want := payload(fn(&ctx)); !sameFloat(out[r], want) {
			t.Fatalf("row %d: vectorized %v scalar %v", r, out[r], want)
		}
	}
}
