package vexpr_test

import (
	"testing"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/vexpr"
)

const iterSlot = 1

func iterVar() ast.Expr {
	return &ast.Ident{Name: "u", Bind: ast.Binding{Kind: ast.BindIter, Slot: iterSlot, Class: "C"}, Ty: ast.RefT("C")}
}

func iterField(attr int) ast.Expr {
	return &ast.FieldExpr{X: iterVar(), Name: "a", AttrIdx: attr, Class: "C", Ty: ast.NumberT}
}

// TestCompileAccumGatheredFold: `u.n0 * 2 + selfAttr` compiles with the iter
// field as a gathered column load and the probing-row attribute as a
// broadcast, and evaluates lane-for-lane.
func TestCompileAccumGatheredFold(t *testing.T) {
	e := &ast.BinaryExpr{
		Op: token.PLUS,
		X: &ast.BinaryExpr{Op: token.STAR, X: iterField(attrN0),
			Y: &ast.NumLit{V: 2}, Ty: ast.NumberT},
		Y:  &ast.Ident{Name: "s", Bind: ast.Binding{Kind: ast.BindStateAttr, AttrIdx: attrN1}, Ty: ast.NumberT},
		Ty: ast.NumberT,
	}
	prog, bcast, cols, ok := vexpr.CompileAccum(e, iterSlot)
	if !ok {
		t.Fatal("CompileAccum failed")
	}
	if len(cols) != 1 || cols[0] != attrN0 {
		t.Fatalf("cols = %v, want [%d]", cols, attrN0)
	}
	if len(bcast) != 1 || bcast[0] != (vexpr.BcastSrc{Kind: vexpr.BcastStateAttr, Idx: attrN1}) {
		t.Fatalf("bcast = %v", bcast)
	}
	if prog.NeedIDs() {
		t.Fatal("expression reads no candidate ids")
	}

	const k = 1500 // spans multiple batches
	lane := make([]float64, k)
	for i := range lane {
		lane[i] = float64(i%19) - 7
	}
	env := &vexpr.Env{
		Cols:  make([][]float64, 4),
		Bcast: []float64{3.25},
	}
	env.Cols[attrN0] = lane
	out := make([]float64, k)
	var m vexpr.Machine
	prog.Run(&m, env, 0, k, out)
	for i := range out {
		if want := lane[i]*2 + 3.25; out[i] != want {
			t.Fatalf("lane %d: got %v, want %v", i, out[i], want)
		}
	}
}

// TestCompileAccumIterAsValue: the bare iteration variable evaluates to the
// candidate id lane.
func TestCompileAccumIterAsValue(t *testing.T) {
	prog, bcast, cols, ok := vexpr.CompileAccum(iterVar(), iterSlot)
	if !ok {
		t.Fatal("CompileAccum failed")
	}
	if !prog.NeedIDs() {
		t.Fatal("iter-as-value must need ids")
	}
	if len(cols) != 0 || len(bcast) != 0 {
		t.Fatalf("cols=%v bcast=%v, want empty", cols, bcast)
	}
	ids := []float64{5, 9, 2}
	env := &vexpr.Env{IDs: ids}
	out := make([]float64, len(ids))
	var m vexpr.Machine
	prog.Run(&m, env, 0, len(ids), out)
	for i := range ids {
		if out[i] != ids[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], ids[i])
		}
	}
}

// TestCompileAccumBailouts: reads the gathered fold cannot serve stay on the
// scalar path.
func TestCompileAccumBailouts(t *testing.T) {
	// Effect attrs are not readable in the effect phase.
	if _, _, _, ok := vexpr.CompileAccum(&ast.Ident{Name: "fx", Bind: ast.Binding{Kind: ast.BindEffectAttr, AttrIdx: 0}, Ty: ast.NumberT}, iterSlot); ok {
		t.Fatal("effect read must bail")
	}
	// A different iteration variable (outer accum) cannot be broadcast.
	other := &ast.Ident{Name: "v", Bind: ast.Binding{Kind: ast.BindIter, Slot: 3, Class: "C"}, Ty: ast.RefT("C")}
	if _, _, _, ok := vexpr.CompileAccum(&ast.FieldExpr{X: other, AttrIdx: attrN0, Class: "C", Ty: ast.NumberT}, iterSlot); ok {
		t.Fatal("outer iter read must bail")
	}
}

// TestCompileAccumLocalBroadcast: probing-row locals broadcast; a field read
// through a broadcast ref still gathers through Env.Gather.
func TestCompileAccumLocalBroadcast(t *testing.T) {
	local := &ast.Ident{Name: "l", Bind: ast.Binding{Kind: ast.BindLocal, Slot: 4}, Ty: ast.RefT("C")}
	e := &ast.FieldExpr{X: local, Name: "a", AttrIdx: attrN0, Class: "C", Ty: ast.NumberT}
	prog, bcast, cols, ok := vexpr.CompileAccum(e, iterSlot)
	if !ok {
		t.Fatal("CompileAccum failed")
	}
	if len(bcast) != 1 || bcast[0] != (vexpr.BcastSrc{Kind: vexpr.BcastSlot, Idx: 4}) {
		t.Fatalf("bcast = %v", bcast)
	}
	if len(cols) != 0 {
		t.Fatalf("cols = %v, want none (gathers via Env.Gather)", cols)
	}
	gathered := 0
	env := &vexpr.Env{
		Bcast: []float64{42},
		Gather: func(class string, attrIdx int, refs, out []float64, zero float64) {
			gathered++
			for i, r := range refs {
				out[i] = r * 10
			}
			_ = class
			_ = attrIdx
			_ = zero
		},
	}
	out := make([]float64, 3)
	var m vexpr.Machine
	prog.Run(&m, env, 0, 3, out)
	if gathered == 0 {
		t.Fatal("Gather never called")
	}
	for i := range out {
		if out[i] != 420 {
			t.Fatalf("out[%d] = %v, want 420", i, out[i])
		}
	}
}
