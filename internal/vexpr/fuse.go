package vexpr

// Superinstruction fusion: a post-compile peephole pass over the SSA program
// that collapses common single-use producer→consumer chains into one fused
// instruction whose loop reads every operand exactly once and writes once.
// The shapes fused here are the ones the compiler actually emits for hot SGL
// expressions — FMA-shaped arithmetic (mul-add / mul-sub / sub-mul),
// compare+select from conditionals, clamp (min∘max), abs-diff, and the
// conjunction/disjunction chains accum residual kernels produce.
//
// Every rewrite is bitwise-identity-preserving against both the unfused
// instruction sequence and the scalar closure evaluator:
//
//   - fused arithmetic rounds the intermediate explicitly (float64(a*b)+c in
//     the executor), so no FMA contraction can change the result;
//   - IEEE addition and multiplication are operand-order symmetric at the
//     bit level for every non-NaN input (and all NaN results compare equal
//     under the engine's NaN-tolerant payload identity);
//   - math.Min/math.Max are argument-order symmetric including NaN and ±0,
//     so min(hi, max(x, lo)) fuses to the same clamp as min(max(x, lo), hi);
//   - comparisons produce exactly 0 or 1, so branching on the comparison
//     inside cmp-select is identical to selecting on a materialized mask;
//   - &&/|| lanes are exactly 0 or 1 and evaluation is total, so flattening
//     a conjunction tree cannot change any lane.
//
// After fusion the program is compacted (dead producers removed, registers
// renumbered) and split into batch-invariant and per-batch partitions.

// arity returns how many operand registers (a, b, c, d in order) an op reads.
func arity(o op) int {
	switch o {
	case opConst, opLoadCol, opLoadFx, opLoadSlot, opSelfID, opBcast:
		return 0
	case opNeg, opNot, opAbs, opFloor, opCeil, opSqrt, opGather:
		return 1
	case opAdd, opSub, opMul, opDiv, opMod, opLT, opLE, opGT, opGE, opEQ,
		opNEQ, opAnd, opOr, opMin, opMax, opAbsDiff:
		return 2
	case opSel, opClamp, opMulAdd, opMulSub, opSubMul, opAnd3, opOr3:
		return 3
	case opDist, opCmpSel, opAnd4, opOr4:
		return 4
	}
	return 0
}

// operandPtr returns a pointer to the k-th operand register field of in.
func operandPtr(in *instr, k int) *int {
	switch k {
	case 0:
		return &in.a
	case 1:
		return &in.b
	case 2:
		return &in.c
	default:
		return &in.d
	}
}

func isCmp(o op) bool {
	switch o {
	case opLT, opLE, opGT, opGE, opEQ, opNEQ:
		return true
	}
	return false
}

// optimize runs the post-compile pipeline: fusion, invariant/per-batch
// split, and closure-chain specialization. Called once at compile time.
func (p *Prog) optimize() {
	p.fuse()
	p.split()
	p.specialize()
	p.opt = true
}

// fuse folds single-use producers into matching consumers until fixpoint,
// then compacts the program. Register numbers equal instruction indices
// throughout (SSA invariant), so operand fields index p.ins directly.
func (p *Prog) fuse() {
	dead := make([]bool, len(p.ins))
	uses := make([]int, len(p.ins))
	recount := func() {
		for i := range uses {
			uses[i] = 0
		}
		for i := range p.ins {
			if dead[i] {
				continue
			}
			in := &p.ins[i]
			for k := 0; k < arity(in.op); k++ {
				uses[*operandPtr(in, k)]++
			}
		}
		uses[p.out]++ // the program result is a use
	}
	for changed := true; changed; {
		changed = false
		recount()
		for i := range p.ins {
			if dead[i] {
				continue
			}
			in := &p.ins[i]
			// prod returns the producer of register r when it is live and
			// has exactly one consumer (this instruction); nil otherwise.
			prod := func(r int) *instr {
				if dead[r] || uses[r] != 1 {
					return nil
				}
				return &p.ins[r]
			}
			// fold replaces *in and retires the producer at register r.
			// Killing a single-use producer keeps all other use counts
			// valid, so the pass continues without an immediate recount.
			fold := func(r int, repl instr) {
				dead[r] = true
				p.fused++
				changed = true
				repl.dst = in.dst
				*in = repl
			}
			switch in.op {
			case opAdd:
				if m := prod(in.a); m != nil && m.op == opMul {
					fold(in.a, instr{op: opMulAdd, a: m.a, b: m.b, c: in.b})
				} else if m := prod(in.b); m != nil && m.op == opMul {
					fold(in.b, instr{op: opMulAdd, a: m.a, b: m.b, c: in.a})
				}
			case opSub:
				if m := prod(in.a); m != nil && m.op == opMul {
					fold(in.a, instr{op: opMulSub, a: m.a, b: m.b, c: in.b})
				}
			case opMul:
				if s := prod(in.a); s != nil && s.op == opSub {
					fold(in.a, instr{op: opSubMul, a: s.a, b: s.b, c: in.b})
				} else if s := prod(in.b); s != nil && s.op == opSub {
					fold(in.b, instr{op: opSubMul, a: s.a, b: s.b, c: in.a})
				}
			case opAbs:
				if s := prod(in.a); s != nil && s.op == opSub {
					fold(in.a, instr{op: opAbsDiff, a: s.a, b: s.b})
				}
			case opMin:
				if x := prod(in.a); x != nil && x.op == opMax {
					fold(in.a, instr{op: opClamp, a: x.a, b: x.b, c: in.b})
				} else if x := prod(in.b); x != nil && x.op == opMax {
					fold(in.b, instr{op: opClamp, a: x.a, b: x.b, c: in.a})
				}
			case opSel:
				if cc := prod(in.a); cc != nil && isCmp(cc.op) {
					fold(in.a, instr{op: opCmpSel, attr: int(cc.op), a: cc.a, b: cc.b, c: in.b, d: in.c})
				}
			case opAnd:
				if x := prod(in.a); x != nil && x.op == opAnd {
					fold(in.a, instr{op: opAnd3, a: x.a, b: x.b, c: in.b})
				} else if x := prod(in.b); x != nil && x.op == opAnd {
					fold(in.b, instr{op: opAnd3, a: in.a, b: x.a, c: x.b})
				} else if x := prod(in.a); x != nil && x.op == opAnd3 {
					fold(in.a, instr{op: opAnd4, a: x.a, b: x.b, c: x.c, d: in.b})
				} else if x := prod(in.b); x != nil && x.op == opAnd3 {
					fold(in.b, instr{op: opAnd4, a: in.a, b: x.a, c: x.b, d: x.c})
				}
			case opOr:
				if x := prod(in.a); x != nil && x.op == opOr {
					fold(in.a, instr{op: opOr3, a: x.a, b: x.b, c: in.b})
				} else if x := prod(in.b); x != nil && x.op == opOr {
					fold(in.b, instr{op: opOr3, a: in.a, b: x.a, c: x.b})
				} else if x := prod(in.a); x != nil && x.op == opOr3 {
					fold(in.a, instr{op: opOr4, a: x.a, b: x.b, c: x.c, d: in.b})
				} else if x := prod(in.b); x != nil && x.op == opOr3 {
					fold(in.b, instr{op: opOr4, a: in.a, b: x.a, c: x.b, d: x.c})
				}
			}
		}
	}
	if p.fused == 0 {
		return
	}
	// Compact: drop dead instructions, renumber registers. Operands always
	// reference earlier instructions, so their remapping is already known.
	remap := make([]int, len(p.ins))
	nw := make([]instr, 0, len(p.ins)-p.fused)
	for i := range p.ins {
		if dead[i] {
			continue
		}
		in := p.ins[i]
		for k := 0; k < arity(in.op); k++ {
			r := operandPtr(&in, k)
			*r = remap[*r]
		}
		in.dst = len(nw)
		remap[i] = in.dst
		nw = append(nw, in)
	}
	p.ins = nw
	p.out = remap[p.out]
	p.nRegs = len(nw)
}

// split partitions the program into batch-invariant instructions (constants
// and broadcasts, materialized once per Run by fillInv) and per-batch
// instructions. A program whose result is itself invariant has no per-batch
// output; Run then just copies the materialized register.
func (p *Prog) split() {
	for _, in := range p.ins {
		if in.op == opConst || in.op == opBcast {
			p.inv = append(p.inv, in)
		} else {
			p.batch = append(p.batch, in)
		}
	}
	o := p.ins[p.out].op
	p.outBatch = o != opConst && o != opBcast
}
