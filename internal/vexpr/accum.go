package vexpr

// Accum-gather compilation: the batched join executor collects the candidate
// rows one probing row matched, gathers the source columns those candidates
// touch into dense lanes, and folds the accum contribution columnar instead
// of interpreting the loop body once per match. In such a program the lane
// axis is "candidate of this probe", not "row of the executing class":
//
//   - `u.attr` (a field of the iteration variable) loads the gathered
//     candidate column for attr;
//   - `u` itself evaluates to the candidate id lane (Env.IDs);
//   - self attributes, locals and self() are scalars of the one probing row
//     driving the join, broadcast across all lanes via Env.Bcast;
//   - fields of non-iter references still gather through Env.Gather.

import (
	"repro/internal/sgl/ast"
)

// BcastKind names where a broadcast scalar comes from on the probing row.
type BcastKind uint8

const (
	// BcastStateAttr broadcasts a state attribute of the probing row.
	BcastStateAttr BcastKind = iota
	// BcastSlot broadcasts a frame slot (let-bound local or outer iter
	// variable) of the probing row's evaluation context.
	BcastSlot
	// BcastSelfID broadcasts the probing row's object id.
	BcastSelfID
)

// BcastSrc is one probing-row scalar an accum program reads. The engine
// fills Env.Bcast in this slice's order before each probe's fold.
type BcastSrc struct {
	Kind BcastKind
	Idx  int // attr index (BcastStateAttr) or frame slot (BcastSlot)
}

// CompileAccum translates a type-checked accum contribution expression into
// a batch program over gathered candidate lanes. iterSlot is the frame slot
// of the iteration variable. On success it also reports the probing-row
// scalars to broadcast (in Env.Bcast order) and the source-class state
// attributes whose columns must be gathered (Env.Cols indices). ok is false
// when the expression reads anything without a columnar payload.
func CompileAccum(e ast.Expr, iterSlot int) (p *Prog, bcast []BcastSrc, cols []int, ok bool) {
	return CompileAccumOpts(e, iterSlot, Opts{})
}

// CompileAccumOpts is CompileAccum with compilation options (dictionary
// string lanes, optimization control).
func CompileAccumOpts(e ast.Expr, iterSlot int, o Opts) (p *Prog, bcast []BcastSrc, cols []int, ok bool) {
	c := &compiler{iterSlot: iterSlot, dict: o.Dict}
	out := c.compile(e)
	if c.fail || out < 0 {
		return nil, nil, nil, false
	}
	return c.finish(out, o), c.bcast, c.cols, true
}

// compileAccumIdent is compileIdent under accum-gather lane semantics.
func (c *compiler) compileAccumIdent(e *ast.Ident) int {
	switch e.Bind.Kind {
	case ast.BindIter, ast.BindLocal:
		if e.Bind.Slot == c.iterSlot {
			// The iteration variable as a value: the candidate id lane.
			c.p.needIDs = true
			return c.emit(instr{op: opSelfID})
		}
		if e.Bind.Kind == ast.BindIter || !c.payloadOK(e.Ty.Kind) {
			return c.bail() // a different (outer) iter variable
		}
		return c.bcastReg(BcastSrc{Kind: BcastSlot, Idx: e.Bind.Slot})
	case ast.BindStateAttr:
		if !c.payloadOK(e.Ty.Kind) {
			return c.bail()
		}
		return c.bcastReg(BcastSrc{Kind: BcastStateAttr, Idx: e.Bind.AttrIdx})
	case ast.BindSelf:
		return c.bcastReg(BcastSrc{Kind: BcastSelfID})
	default: // BindEffectAttr, BindExtent, unresolved
		return c.bail()
	}
}

// bcastReg emits a broadcast load, deduplicating identical sources.
func (c *compiler) bcastReg(src BcastSrc) int {
	idx := -1
	for i, b := range c.bcast {
		if b == src {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = len(c.bcast)
		c.bcast = append(c.bcast, src)
	}
	return c.emit(instr{op: opBcast, attr: idx})
}

// useCol records a gathered candidate column dependency.
func (c *compiler) useCol(attr int) {
	for _, a := range c.cols {
		if a == attr {
			return
		}
	}
	c.cols = append(c.cols, attr)
}

// isIterIdent reports whether e is the iteration variable itself.
func isIterIdent(e ast.Expr, iterSlot int) bool {
	id, ok := e.(*ast.Ident)
	return ok && (id.Bind.Kind == ast.BindIter || id.Bind.Kind == ast.BindLocal) && id.Bind.Slot == iterSlot
}
