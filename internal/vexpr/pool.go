package vexpr

import "sync"

// Reset drops the machine's register table and cached per-program slabs,
// returning it to the zero state. A many-world server hibernating a world
// calls this (directly or via the engine's arena pool) so an idle machine
// stops pinning the slab cache of every program it ever ran; the next run
// simply re-carves.
func (m *Machine) Reset() {
	m.regs = nil
	m.states = nil
	m.lastProg = nil
}

// MachinePool is a free list of kernel machines shared by many worlds.
// Machines carry the per-program constant/scratch slab cache, which is the
// expensive part to warm: because same-script worlds share *Prog pointers
// (compiled plans are cached per script), a machine checked out from the
// pool usually still holds hot slabs for exactly the programs the next
// world is about to run. Get/Put are safe for concurrent use; the machines
// themselves are not.
type MachinePool struct {
	mu   sync.Mutex
	free []*Machine
}

// Get returns a machine from the pool, or a fresh zero machine. LIFO order
// keeps slab caches warm across consecutive ticks of the same world set.
func (p *MachinePool) Get() *Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return new(Machine)
}

// Put returns a machine to the pool. The cached slabs are kept (that is the
// point of pooling); call Reset first to discard them instead.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}
