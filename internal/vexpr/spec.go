package vexpr

import "math"

// Per-program specialization: short straight-line programs (the top kernel
// shapes — fused arithmetic chains and single-predicate masks) get one
// prebound closure per per-batch instruction, built once at compile time
// (world build). Running a batch then walks a flat []batchFn with every
// operand slice resolved through the machine — no per-instruction opcode
// dispatch — and the final closure writes straight into the caller's output
// slice, eliminating the interpreter's result copy as well.

// specMaxOps bounds closure-chain specialization. Longer programs keep the
// generic per-batch interpreter (still fused and invariant-hoisted).
const specMaxOps = 8

// batchFn executes one instruction over rows [lo, hi) of the environment;
// n = hi-lo, and out is the caller's output window for this batch (used
// only by the final closure in a chain).
type batchFn func(m *Machine, env *Env, lo, hi, n int, out []float64)

func (p *Prog) specialize() {
	if !p.outBatch || len(p.batch) == 0 || len(p.batch) > specMaxOps {
		return
	}
	chain := make([]batchFn, 0, len(p.batch))
	for i, in := range p.batch {
		fn := instrFn(in, i == len(p.batch)-1)
		if fn == nil {
			return
		}
		chain = append(chain, fn)
	}
	p.chain = chain
}

// instrFn builds the specialized closure for one instruction. final marks
// the program's output instruction, which writes into the caller's output
// window instead of machine scratch.
func instrFn(in instr, final bool) batchFn {
	// dst resolves the destination lane for compute ops.
	dst := func(m *Machine, n int, out []float64) []float64 {
		if final {
			return out[:n]
		}
		return m.regs[in.dst][:n]
	}
	switch in.op {
	case opLoadCol:
		if final {
			return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
				copy(out[:n], env.Cols[in.attr][lo:hi])
			}
		}
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			m.regs[in.dst] = env.Cols[in.attr][lo:hi]
		}
	case opLoadFx:
		if final {
			return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
				copy(out[:n], env.Fx[in.attr][lo:hi])
			}
		}
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			m.regs[in.dst] = env.Fx[in.attr][lo:hi]
		}
	case opLoadSlot:
		if final {
			return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
				copy(out[:n], env.Slots[in.attr][lo:hi])
			}
		}
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			m.regs[in.dst] = env.Slots[in.attr][lo:hi]
		}
	case opSelfID:
		if final {
			return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
				copy(out[:n], env.IDs[lo:hi])
			}
		}
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			m.regs[in.dst] = env.IDs[lo:hi]
		}
	case opGather:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			env.Gather(in.class, in.attr, m.regs[in.a][:n], dst(m, n, out), in.imm)
		}
	case opNeg:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				d[i] = -a[i]
			}
		}
	case opNot:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				if a[i] == 0 {
					d[i] = 1
				} else {
					d[i] = 0
				}
			}
		}
	case opAdd:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = a[i] + b[i]
			}
		}
	case opSub:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = a[i] - b[i]
			}
		}
	case opMul:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = a[i] * b[i]
			}
		}
	case opDiv:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = a[i] / b[i]
			}
		}
	case opMod:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = math.Mod(a[i], b[i])
			}
		}
	case opLT:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] < b[i])
			}
		}
	case opLE:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] <= b[i])
			}
		}
	case opGT:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] > b[i])
			}
		}
	case opGE:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] >= b[i])
			}
		}
	case opEQ:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] == b[i])
			}
		}
	case opNEQ:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] != b[i])
			}
		}
	case opAnd:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 && b[i] != 0)
			}
		}
	case opOr:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 || b[i] != 0)
			}
		}
	case opSel:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, cc, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				if cc[i] != 0 {
					d[i] = a[i]
				} else {
					d[i] = b[i]
				}
			}
		}
	case opAbs:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				d[i] = math.Abs(a[i])
			}
		}
	case opMin:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = math.Min(a[i], b[i])
			}
		}
	case opMax:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = math.Max(a[i], b[i])
			}
		}
	case opFloor:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				d[i] = math.Floor(a[i])
			}
		}
	case opCeil:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				d[i] = math.Ceil(a[i])
			}
		}
	case opSqrt:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a := dst(m, n, out), m.regs[in.a][:n]
			for i := range d {
				d[i] = math.Sqrt(a[i])
			}
		}
	case opClamp:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, x, lov, hiv := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				d[i] = math.Min(math.Max(x[i], lov[i]), hiv[i])
			}
		}
	case opDist:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, x1, y1, x2, y2 := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range d {
				d[i] = math.Hypot(x1[i]-x2[i], y1[i]-y2[i])
			}
		}
	case opMulAdd:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				// float64(): forbid FMA contraction, match unfused rounding.
				d[i] = float64(a[i]*b[i]) + cc[i]
			}
		}
	case opMulSub:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				d[i] = float64(a[i]*b[i]) - cc[i]
			}
		}
	case opSubMul:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				d[i] = float64(a[i]-b[i]) * cc[i]
			}
		}
	case opAbsDiff:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range d {
				d[i] = math.Abs(a[i] - b[i])
			}
		}
	case opCmpSel:
		cmp := op(in.attr)
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			cmpSel(cmp, dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n])
		}
	case opAnd3:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 && b[i] != 0 && cc[i] != 0)
			}
		}
	case opOr3:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 || b[i] != 0 || cc[i] != 0)
			}
		}
	case opAnd4:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc, dd := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 && b[i] != 0 && cc[i] != 0 && dd[i] != 0)
			}
		}
	case opOr4:
		return func(m *Machine, env *Env, lo, hi, n int, out []float64) {
			d, a, b, cc, dd := dst(m, n, out), m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range d {
				d[i] = b2f(a[i] != 0 || b[i] != 0 || cc[i] != 0 || dd[i] != 0)
			}
		}
	}
	return nil
}
