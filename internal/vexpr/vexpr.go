// Package vexpr compiles type-checked SGL expressions into vectorized batch
// kernels that run directly over the columnar storage of package table —
// the set-at-a-time execution model the paper argues for (§2, §4): instead
// of interpreting a closure tree once per object, a compiled Prog streams
// whole column slices through a small register machine in cache-sized
// batches, one tight loop per operator.
//
// Numbers, booleans and references share the engine's float64 column
// representation (bool = 0/1, ref = object id, null = -1), so a single
// float64 lane per row covers every numeric-payload kind. Strings and sets
// have no columnar payload here: Compile reports ok=false for expressions
// touching them and the engine falls back to the scalar closure evaluator
// of package expr, which remains the semantic reference.
//
// Semantics are identical to the closure evaluator by construction:
// evaluation is total (IEEE division, NaN-propagating math), && and ||
// evaluate both sides — sound because SGL expressions are pure and
// exception-free — and comparisons on bool/ref payloads order exactly like
// value.Compare.
package vexpr

import (
	"math"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// batchSize is the number of rows processed per kernel invocation. 1 KiB of
// float64 lanes per register keeps the working set of a typical expression
// (a handful of registers) inside L1/L2 while amortizing dispatch.
const batchSize = 1024

// BatchSize is the number of rows per kernel batch, exported so callers can
// align shard boundaries to whole batches (a shard split mid-batch would pay
// two partial-batch passes at every kernel).
const BatchSize = batchSize

type op uint8

const (
	opConst op = iota
	opLoadCol
	opLoadFx
	opLoadSlot
	opSelfID
	opBcast
	opGather
	opNeg
	opNot
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNEQ
	opAnd
	opOr
	opSel
	opAbs
	opMin
	opMax
	opFloor
	opCeil
	opSqrt
	opClamp
	opDist
	// Fused superinstructions, produced only by the post-compile peephole
	// pass (fuse.go), never by the compiler. Each collapses a single-use
	// producer chain into one loop that reads its operands once and writes
	// once; all rewrites are bitwise-identity-preserving (see fuse.go).
	opMulAdd  // a*b + c  (intermediate product explicitly rounded)
	opMulSub  // a*b - c  (intermediate product explicitly rounded)
	opSubMul  // (a-b) * c (intermediate difference explicitly rounded)
	opAbsDiff // abs(a - b)
	opCmpSel  // cmp(a,b) ? c : d — comparison op stored in attr
	opAnd3    // a && b && c
	opOr3     // a || b || c
	opAnd4    // a && b && c && d
	opOr4     // a || b || c || d
)

// instr is one SSA instruction: every instruction writes a fresh register.
type instr struct {
	op         op
	dst        int
	a, b, c, d int     // operand registers
	imm        float64 // opConst: the constant; opGather: the zero payload
	attr       int     // opLoadCol/opLoadFx/opLoadSlot: column index; opGather: attr index
	class      string  // opGather: class of the referenced object
}

// Prog is a compiled batch kernel. A Prog is immutable and safe for
// concurrent Run calls as long as each goroutine uses its own Machine.
type Prog struct {
	ins     []instr
	nRegs   int
	out     int
	needIDs bool
	fxUsed  []int

	// Optimized execution plan, built once at compile time (world build).
	// inv holds the batch-invariant instructions (opConst/opBcast) that are
	// materialized once per Run instead of once per batch; batch holds the
	// per-batch instructions in SSA order. chain, when non-nil, is the
	// closure-chain specialized executor for short straight-line programs.
	// outBatch records whether the output register is produced per batch
	// (false: the whole program is batch-invariant).
	inv      []instr
	batch    []instr
	chain    []batchFn
	outBatch bool
	fused    int
	opt      bool
}

// Env binds a Prog to one class extent for execution. All slices are
// indexed by physical row and read-only for the kernel.
type Env struct {
	// Cols holds the float64 payload of every state column, indexed by
	// state-attribute index (entries for string/set columns may be nil —
	// compiled programs never load them).
	Cols [][]float64
	// Fx holds the ⊕-combined effect value per effect attribute, dense
	// over physical rows with absent contributions already replaced by the
	// combinator's zero payload. Only consulted by update-rule programs.
	Fx [][]float64
	// IDs holds each row's object id as float64; required only when
	// NeedIDs reports true.
	IDs []float64
	// Slots holds frame-slot vectors for let-bound locals, indexed by
	// slot. Only slots permitted at compile time are loaded.
	Slots [][]float64
	// Bcast holds per-run scalar payloads broadcast across all lanes,
	// indexed by the BcastSrc order a CompileAccum program reports. Only
	// consulted by accum-gathered programs, whose lanes are candidate rows
	// of the joined class while self/local reads refer to the one probing
	// row driving the join.
	Bcast []float64
	// Gather resolves a cross-object state read: for every id payload in
	// refs it must write the referenced object's attribute payload to out,
	// or zero for null/dangling references.
	Gather func(class string, attrIdx int, refs, out []float64, zero float64)
}

// Machine holds the scratch registers for running programs. A zero Machine
// is ready to use; it grows to the largest program it has run.
type Machine struct {
	regs [][]float64
	// states caches one carved scratch slab per program, so programs that
	// alternate on one machine — join sites cycle value/key/residual
	// kernels per candidate batch — keep their constants materialized
	// instead of re-carving and refilling on every switch. No kernel ever
	// writes another program's registers, so a cached slab stays valid.
	states map[*Prog]*machState
	// lastProg tracks which program's register table m.regs currently
	// aliases; back-to-back runs of one program skip prepare entirely.
	lastProg *Prog
}

type machState struct {
	regs    [][]float64
	scratch []float64
}

// maxMachStates bounds the per-machine slab cache; engine worlds compile a
// bounded program set at build, so eviction only triggers in synthetic
// many-program loads (fuzzers), where dropping the cache is harmless.
const maxMachStates = 64

// NeedIDs reports whether Env.IDs must be populated.
func (p *Prog) NeedIDs() bool { return p.needIDs }

// FxUsed returns the effect-attribute indices the program reads.
func (p *Prog) FxUsed() []int { return p.fxUsed }

// Kernels returns the number of per-batch operators the program executes —
// the work unit of the plan cost model. Fusion and invariant hoisting shrink
// this count, which is how ChooseExec/ChooseJoin learn the fused fast path's
// true cost without new tuning constants.
func (p *Prog) Kernels() int { return len(p.batch) }

// FusedOps returns the number of instructions eliminated by superinstruction
// fusion — the build-time gauge behind the engine's FusedOps counter.
func (p *Prog) FusedOps() int { return p.fused }

// Specialized reports whether the program runs through the closure-chain
// specialized executor instead of the generic instruction loop.
func (p *Prog) Specialized() bool { return p.chain != nil }

// Dict interns strings to dense float64 codes so string predicates compile
// to numeric kernels; table.Dict satisfies it. Code is only called at
// compile time (world build, single-threaded), never during kernel runs.
type Dict interface {
	Code(s string) float64
}

// Opts tunes compilation. The zero Opts reproduces Compile's behavior.
type Opts struct {
	// SlotOK reports which let-bound frame slots have vectorized values.
	SlotOK func(slot int) bool
	// Dict, when non-nil, enables dictionary-encoded string lanes: string
	// literals compile to code constants, and string ==/!= compiles to
	// numeric comparison over code columns (same dict ⇒ equal codes iff
	// equal strings). Ordered string comparisons still bail — codes are
	// interned in first-use order, not lexicographically.
	Dict Dict
	// NoOpt disables the post-compile fusion/hoisting/specialization passes,
	// leaving the naive one-op-per-batch interpreter. Benchmark arms use it
	// to measure the optimization delta; production callers never set it.
	NoOpt bool
}

// Compile translates a type-checked expression into a batch program. The
// second result is false when the expression touches strings, sets,
// iteration variables or class extents; callers then use the scalar
// closure path of package expr.
func Compile(e ast.Expr) (*Prog, bool) { return CompileOpts(e, Opts{}) }

// CompileWithSlots is Compile for expressions that may read let-bound frame
// slots; slotOK reports which slots have vectorized values available.
func CompileWithSlots(e ast.Expr, slotOK func(slot int) bool) (*Prog, bool) {
	return CompileOpts(e, Opts{SlotOK: slotOK})
}

// CompileOpts is the general compilation entry point.
func CompileOpts(e ast.Expr, o Opts) (*Prog, bool) {
	c := &compiler{slotOK: o.SlotOK, dict: o.Dict, iterSlot: -1}
	out := c.compile(e)
	if c.fail || out < 0 {
		return nil, false
	}
	return c.finish(out, o), true
}

// finish seals the SSA program and, unless disabled, runs the optimization
// pipeline: superinstruction fusion, invariant hoisting, specialization.
func (c *compiler) finish(out int, o Opts) *Prog {
	c.p.out = out
	c.p.nRegs = len(c.p.ins)
	p := &c.p
	if o.NoOpt {
		p.batch = p.ins
		p.outBatch = true
		return p
	}
	p.optimize()
	return p
}

// payloadKind reports whether a kind shares the float64 column payload.
func payloadKind(k value.Kind) bool {
	return k == value.KindNumber || k == value.KindBool || k == value.KindRef
}

// zeroPayload is the float64 payload of value.Zero(k) for payload kinds.
// For dictionary-encoded strings the zero payload is 0: every Dict interns
// "" as code 0, matching value.Zero(KindString).
func zeroPayload(k value.Kind) float64 {
	if k == value.KindRef {
		return float64(value.NullID)
	}
	return 0
}

// payloadOK reports whether values of kind k have a float64 lane under this
// compilation: payload kinds always, strings only when a dictionary supplies
// code lanes.
func (c *compiler) payloadOK(k value.Kind) bool {
	return payloadKind(k) || (c.dict != nil && k == value.KindString)
}

type compiler struct {
	p      Prog
	slotOK func(int) bool
	dict   Dict
	fail   bool

	// Accum-gather mode (CompileAccum): iterSlot >= 0 flips lane meaning —
	// lanes are candidate rows of the iterated class, iter field reads
	// become column loads over gathered candidate columns, and probing-row
	// scalars (self attrs, locals, self id) become broadcasts.
	iterSlot int
	bcast    []BcastSrc
	cols     []int
}

func (c *compiler) emit(i instr) int {
	i.dst = len(c.p.ins)
	c.p.ins = append(c.p.ins, i)
	return i.dst
}

func (c *compiler) bail() int {
	c.fail = true
	return -1
}

func (c *compiler) compile(e ast.Expr) int {
	if c.fail {
		return -1
	}
	switch e := e.(type) {
	case *ast.NumLit:
		return c.emit(instr{op: opConst, imm: e.V})
	case *ast.BoolLit:
		v := 0.0
		if e.V {
			v = 1
		}
		return c.emit(instr{op: opConst, imm: v})
	case *ast.NullLit:
		return c.emit(instr{op: opConst, imm: float64(value.NullID)})
	case *ast.StrLit:
		if c.dict == nil {
			return c.bail()
		}
		return c.emit(instr{op: opConst, imm: c.dict.Code(e.V)})
	case *ast.Ident:
		return c.compileIdent(e)
	case *ast.FieldExpr:
		if !c.payloadOK(e.Ty.Kind) {
			return c.bail()
		}
		if c.iterSlot >= 0 && isIterIdent(e.X, c.iterSlot) {
			// Iter field read: a direct load from the gathered candidate
			// columns — the core of the columnar join fold.
			c.useCol(e.AttrIdx)
			return c.emit(instr{op: opLoadCol, attr: e.AttrIdx})
		}
		x := c.compile(e.X)
		if x < 0 {
			return -1
		}
		return c.emit(instr{op: opGather, a: x, class: e.Class, attr: e.AttrIdx, imm: zeroPayload(e.Ty.Kind)})
	case *ast.UnaryExpr:
		x := c.compile(e.X)
		if x < 0 {
			return -1
		}
		switch e.Op {
		case token.MINUS:
			return c.emit(instr{op: opNeg, a: x})
		case token.NOT:
			return c.emit(instr{op: opNot, a: x})
		}
		return c.bail()
	case *ast.BinaryExpr:
		return c.compileBinary(e)
	case *ast.CondExpr:
		if !c.payloadOK(e.Ty.Kind) {
			return c.bail()
		}
		cc, t, f := c.compile(e.C), c.compile(e.T), c.compile(e.F)
		if cc < 0 || t < 0 || f < 0 {
			return -1
		}
		return c.emit(instr{op: opSel, a: cc, b: t, c: f})
	case *ast.CallExpr:
		return c.compileCall(e)
	default:
		return c.bail()
	}
}

func (c *compiler) compileIdent(e *ast.Ident) int {
	if c.iterSlot >= 0 {
		return c.compileAccumIdent(e)
	}
	switch e.Bind.Kind {
	case ast.BindStateAttr:
		if !c.payloadOK(e.Ty.Kind) {
			return c.bail()
		}
		return c.emit(instr{op: opLoadCol, attr: e.Bind.AttrIdx})
	case ast.BindLocal:
		if c.slotOK == nil || !c.slotOK(e.Bind.Slot) || !c.payloadOK(e.Ty.Kind) {
			return c.bail()
		}
		return c.emit(instr{op: opLoadSlot, attr: e.Bind.Slot})
	case ast.BindSelf:
		c.p.needIDs = true
		return c.emit(instr{op: opSelfID})
	case ast.BindEffectAttr:
		if !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		c.p.fxUsed = append(c.p.fxUsed, e.Bind.AttrIdx)
		return c.emit(instr{op: opLoadFx, attr: e.Bind.AttrIdx})
	default: // BindIter, BindExtent, unresolved
		return c.bail()
	}
}

func (c *compiler) compileBinary(e *ast.BinaryExpr) int {
	xk, yk := e.X.Type().Kind, e.Y.Type().Kind
	switch e.Op {
	case token.EQ, token.NEQ:
		// Equality extends to dictionary-encoded strings: with a shared
		// dict, codes are equal iff the strings are.
		if !c.payloadOK(xk) || !c.payloadOK(yk) {
			return c.bail()
		}
	default:
		// Ordered string comparisons have no columnar payload (codes are not
		// lexicographic); everything else shares float64 ordering with
		// value.Compare/Equal.
		if !payloadKind(xk) || !payloadKind(yk) {
			return c.bail()
		}
	}
	x, y := c.compile(e.X), c.compile(e.Y)
	if x < 0 || y < 0 {
		return -1
	}
	var o op
	switch e.Op {
	case token.PLUS:
		o = opAdd
	case token.MINUS:
		o = opSub
	case token.STAR:
		o = opMul
	case token.SLASH:
		o = opDiv
	case token.PERCENT:
		o = opMod
	case token.LT:
		o = opLT
	case token.LE:
		o = opLE
	case token.GT:
		o = opGT
	case token.GE:
		o = opGE
	case token.EQ:
		o = opEQ
	case token.NEQ:
		o = opNEQ
	case token.ANDAND:
		o = opAnd
	case token.OROR:
		o = opOr
	default:
		return c.bail()
	}
	return c.emit(instr{op: o, a: x, b: y})
}

func (c *compiler) compileCall(e *ast.CallExpr) int {
	args := make([]int, len(e.Args))
	for i, a := range e.Args {
		if args[i] = c.compile(a); args[i] < 0 {
			return -1
		}
	}
	switch e.Builtin {
	case ast.BAbs:
		return c.emit(instr{op: opAbs, a: args[0]})
	case ast.BMin:
		return c.emit(instr{op: opMin, a: args[0], b: args[1]})
	case ast.BMax:
		return c.emit(instr{op: opMax, a: args[0], b: args[1]})
	case ast.BFloor:
		return c.emit(instr{op: opFloor, a: args[0]})
	case ast.BCeil:
		return c.emit(instr{op: opCeil, a: args[0]})
	case ast.BSqrt:
		return c.emit(instr{op: opSqrt, a: args[0]})
	case ast.BClamp:
		return c.emit(instr{op: opClamp, a: args[0], b: args[1], c: args[2]})
	case ast.BDist:
		return c.emit(instr{op: opDist, a: args[0], b: args[1], c: args[2], d: args[3]})
	case ast.BID:
		// id(ref) reinterprets the payload as a number — already identical.
		return args[0]
	case ast.BSelfFn:
		if c.iterSlot >= 0 {
			// In accum mode, self() is the probing row — a broadcast.
			return c.bcastReg(BcastSrc{Kind: BcastSelfID})
		}
		c.p.needIDs = true
		return c.emit(instr{op: opSelfID})
	default: // size/contains operate on sets
		return c.bail()
	}
}

// prepare sizes the machine's registers for p. Alias ops (loads) get their
// register rebound per batch; compute ops own a batch-sized scratch slice.
// It reports whether the machine switched programs: a machine that just ran
// the same program keeps its register carving (and the constants already
// materialized in scratch — no other program's kernels touched them).
func (m *Machine) prepare(p *Prog) (fresh bool) {
	if m.lastProg == p {
		return false
	}
	m.lastProg = p
	if st, ok := m.states[p]; ok {
		m.regs = st.regs
		return false
	}
	need := 0
	for _, in := range p.ins {
		if !aliasOp(in.op) {
			need += batchSize
		}
	}
	st := &machState{
		regs:    make([][]float64, p.nRegs),
		scratch: make([]float64, need),
	}
	off := 0
	for _, in := range p.ins {
		if !aliasOp(in.op) {
			st.regs[in.dst] = st.scratch[off : off+batchSize][:batchSize]
			off += batchSize
		}
	}
	if m.states == nil {
		m.states = make(map[*Prog]*machState, 8)
	} else if len(m.states) >= maxMachStates {
		clear(m.states)
	}
	m.states[p] = st
	m.regs = st.regs
	return true
}

func aliasOp(o op) bool {
	switch o {
	case opLoadCol, opLoadFx, opLoadSlot, opSelfID:
		return true
	}
	return false
}

// Run evaluates the program for physical rows [lo, hi), writing each row's
// result payload to out[row]. Rows are processed in batches; dead rows may
// be evaluated (their results are ignored by callers), which is safe
// because SGL expressions are total.
func (p *Prog) Run(m *Machine, env *Env, lo, hi int, out []float64) {
	fresh := m.prepare(p)
	if !p.opt {
		// Unoptimized (NoOpt) programs interpret the full instruction list,
		// re-materializing constants and broadcasts every batch.
		for start := lo; start < hi; start += batchSize {
			end := start + batchSize
			if end > hi {
				end = hi
			}
			p.runSeq(p.batch, m, env, start, end)
			copy(out[start:end], m.regs[p.out][:end-start])
		}
		return
	}
	n := hi - lo
	if n > batchSize {
		n = batchSize
	}
	p.fillInv(m, env, fresh, n)
	for start := lo; start < hi; start += batchSize {
		end := start + batchSize
		if end > hi {
			end = hi
		}
		n := end - start
		switch {
		case !p.outBatch:
			// The whole program is batch-invariant (a literal or a pure
			// broadcast): fillInv already produced the answer.
			copy(out[start:end], m.regs[p.out][:n])
		case p.chain != nil:
			for _, fn := range p.chain {
				fn(m, env, start, end, n, out[start:end])
			}
		default:
			p.runSeq(p.batch, m, env, start, end)
			copy(out[start:end], m.regs[p.out][:n])
		}
	}
}

// fillInv materializes the batch-invariant registers once per Run instead of
// once per batch. Constants fill all batchSize lanes, but only when this
// machine has never carved this program (their cached slab persists across
// program switches). Broadcasts refill every Run (Env.Bcast varies), but
// only the n lanes this Run's batches can read — join residuals rebroadcast
// the probe row's bindings per candidate batch, where n is often a handful
// of rows, and filling 1024 lanes per Run would dominate the kernel.
func (p *Prog) fillInv(m *Machine, env *Env, fresh bool, n int) {
	for _, in := range p.inv {
		if in.op == opBcast {
			dst := m.regs[in.dst][:n]
			v := env.Bcast[in.attr]
			for i := range dst {
				dst[i] = v
			}
		} else if fresh {
			dst := m.regs[in.dst][:batchSize]
			v := in.imm
			for i := range dst {
				dst[i] = v
			}
		}
	}
}

// runSeq interprets one instruction sequence over rows [lo, hi) — the full
// program for NoOpt runs, the per-batch partition for optimized runs.
func (p *Prog) runSeq(ins []instr, m *Machine, env *Env, lo, hi int) {
	n := hi - lo
	for _, in := range ins {
		switch in.op {
		case opConst:
			dst := m.regs[in.dst][:n]
			for i := range dst {
				dst[i] = in.imm
			}
		case opLoadCol:
			m.regs[in.dst] = env.Cols[in.attr][lo:hi]
		case opLoadFx:
			m.regs[in.dst] = env.Fx[in.attr][lo:hi]
		case opLoadSlot:
			m.regs[in.dst] = env.Slots[in.attr][lo:hi]
		case opSelfID:
			m.regs[in.dst] = env.IDs[lo:hi]
		case opBcast:
			dst := m.regs[in.dst][:n]
			v := env.Bcast[in.attr]
			for i := range dst {
				dst[i] = v
			}
		case opGather:
			env.Gather(in.class, in.attr, m.regs[in.a][:n], m.regs[in.dst][:n], in.imm)
		case opNeg:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = -a[i]
			}
		case opNot:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				if a[i] == 0 {
					dst[i] = 1
				} else {
					dst[i] = 0
				}
			}
		case opAdd:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		case opSub:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] - b[i]
			}
		case opMul:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] * b[i]
			}
		case opDiv:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] / b[i]
			}
		case opMod:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Mod(a[i], b[i])
			}
		case opLT:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] < b[i])
			}
		case opLE:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] <= b[i])
			}
		case opGT:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] > b[i])
			}
		case opGE:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] >= b[i])
			}
		case opEQ:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] == b[i])
			}
		case opNEQ:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != b[i])
			}
		case opAnd:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 && b[i] != 0)
			}
		case opOr:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 || b[i] != 0)
			}
		case opSel:
			dst, cc, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				if cc[i] != 0 {
					dst[i] = a[i]
				} else {
					dst[i] = b[i]
				}
			}
		case opAbs:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Abs(a[i])
			}
		case opMin:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Min(a[i], b[i])
			}
		case opMax:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Max(a[i], b[i])
			}
		case opFloor:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Floor(a[i])
			}
		case opCeil:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Ceil(a[i])
			}
		case opSqrt:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Sqrt(a[i])
			}
		case opClamp:
			dst, x, lov, hiv := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = math.Min(math.Max(x[i], lov[i]), hiv[i])
			}
		case opDist:
			dst, x1, y1, x2, y2 := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range dst {
				dst[i] = math.Hypot(x1[i]-x2[i], y1[i]-y2[i])
			}
		case opMulAdd:
			// The float64 conversion forbids FMA contraction (Go spec):
			// the product must round separately to stay bitwise identical
			// to the unfused two-instruction sequence and the closures.
			dst, a, b, cc := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = float64(a[i]*b[i]) + cc[i]
			}
		case opMulSub:
			dst, a, b, cc := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = float64(a[i]*b[i]) - cc[i]
			}
		case opSubMul:
			dst, a, b, cc := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = float64(a[i]-b[i]) * cc[i]
			}
		case opAbsDiff:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Abs(a[i] - b[i])
			}
		case opCmpSel:
			dst, a, b, tv, fv := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			cmpSel(op(in.attr), dst, a, b, tv, fv)
		case opAnd3:
			dst, a, b, cc := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 && b[i] != 0 && cc[i] != 0)
			}
		case opOr3:
			dst, a, b, cc := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 || b[i] != 0 || cc[i] != 0)
			}
		case opAnd4:
			dst, a, b, cc, dd := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 && b[i] != 0 && cc[i] != 0 && dd[i] != 0)
			}
		case opOr4:
			dst, a, b, cc, dd := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 || b[i] != 0 || cc[i] != 0 || dd[i] != 0)
			}
		}
	}
}

// cmpSel is the fused compare+select loop: comparisons yield exactly 0 or 1,
// so branching on the comparison directly is bitwise identical to opSel over
// a materialized mask.
func cmpSel(cmp op, dst, a, b, tv, fv []float64) {
	switch cmp {
	case opLT:
		for i := range dst {
			if a[i] < b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	case opLE:
		for i := range dst {
			if a[i] <= b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	case opGT:
		for i := range dst {
			if a[i] > b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	case opGE:
		for i := range dst {
			if a[i] >= b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	case opEQ:
		for i := range dst {
			if a[i] == b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	case opNEQ:
		for i := range dst {
			if a[i] != b[i] {
				dst[i] = tv[i]
			} else {
				dst[i] = fv[i]
			}
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
