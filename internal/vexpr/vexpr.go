// Package vexpr compiles type-checked SGL expressions into vectorized batch
// kernels that run directly over the columnar storage of package table —
// the set-at-a-time execution model the paper argues for (§2, §4): instead
// of interpreting a closure tree once per object, a compiled Prog streams
// whole column slices through a small register machine in cache-sized
// batches, one tight loop per operator.
//
// Numbers, booleans and references share the engine's float64 column
// representation (bool = 0/1, ref = object id, null = -1), so a single
// float64 lane per row covers every numeric-payload kind. Strings and sets
// have no columnar payload here: Compile reports ok=false for expressions
// touching them and the engine falls back to the scalar closure evaluator
// of package expr, which remains the semantic reference.
//
// Semantics are identical to the closure evaluator by construction:
// evaluation is total (IEEE division, NaN-propagating math), && and ||
// evaluate both sides — sound because SGL expressions are pure and
// exception-free — and comparisons on bool/ref payloads order exactly like
// value.Compare.
package vexpr

import (
	"math"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/value"
)

// batchSize is the number of rows processed per kernel invocation. 1 KiB of
// float64 lanes per register keeps the working set of a typical expression
// (a handful of registers) inside L1/L2 while amortizing dispatch.
const batchSize = 1024

// BatchSize is the number of rows per kernel batch, exported so callers can
// align shard boundaries to whole batches (a shard split mid-batch would pay
// two partial-batch passes at every kernel).
const BatchSize = batchSize

type op uint8

const (
	opConst op = iota
	opLoadCol
	opLoadFx
	opLoadSlot
	opSelfID
	opBcast
	opGather
	opNeg
	opNot
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opLT
	opLE
	opGT
	opGE
	opEQ
	opNEQ
	opAnd
	opOr
	opSel
	opAbs
	opMin
	opMax
	opFloor
	opCeil
	opSqrt
	opClamp
	opDist
)

// instr is one SSA instruction: every instruction writes a fresh register.
type instr struct {
	op         op
	dst        int
	a, b, c, d int     // operand registers
	imm        float64 // opConst: the constant; opGather: the zero payload
	attr       int     // opLoadCol/opLoadFx/opLoadSlot: column index; opGather: attr index
	class      string  // opGather: class of the referenced object
}

// Prog is a compiled batch kernel. A Prog is immutable and safe for
// concurrent Run calls as long as each goroutine uses its own Machine.
type Prog struct {
	ins     []instr
	nRegs   int
	out     int
	needIDs bool
	fxUsed  []int
}

// Env binds a Prog to one class extent for execution. All slices are
// indexed by physical row and read-only for the kernel.
type Env struct {
	// Cols holds the float64 payload of every state column, indexed by
	// state-attribute index (entries for string/set columns may be nil —
	// compiled programs never load them).
	Cols [][]float64
	// Fx holds the ⊕-combined effect value per effect attribute, dense
	// over physical rows with absent contributions already replaced by the
	// combinator's zero payload. Only consulted by update-rule programs.
	Fx [][]float64
	// IDs holds each row's object id as float64; required only when
	// NeedIDs reports true.
	IDs []float64
	// Slots holds frame-slot vectors for let-bound locals, indexed by
	// slot. Only slots permitted at compile time are loaded.
	Slots [][]float64
	// Bcast holds per-run scalar payloads broadcast across all lanes,
	// indexed by the BcastSrc order a CompileAccum program reports. Only
	// consulted by accum-gathered programs, whose lanes are candidate rows
	// of the joined class while self/local reads refer to the one probing
	// row driving the join.
	Bcast []float64
	// Gather resolves a cross-object state read: for every id payload in
	// refs it must write the referenced object's attribute payload to out,
	// or zero for null/dangling references.
	Gather func(class string, attrIdx int, refs, out []float64, zero float64)
}

// Machine holds the scratch registers for running programs. A zero Machine
// is ready to use; it grows to the largest program it has run.
type Machine struct {
	regs    [][]float64
	scratch []float64
}

// NeedIDs reports whether Env.IDs must be populated.
func (p *Prog) NeedIDs() bool { return p.needIDs }

// FxUsed returns the effect-attribute indices the program reads.
func (p *Prog) FxUsed() []int { return p.fxUsed }

// Kernels returns the number of batch operators the program executes per
// batch — the work unit of the plan cost model.
func (p *Prog) Kernels() int { return len(p.ins) }

// Compile translates a type-checked expression into a batch program. The
// second result is false when the expression touches strings, sets,
// iteration variables or class extents; callers then use the scalar
// closure path of package expr.
func Compile(e ast.Expr) (*Prog, bool) { return CompileWithSlots(e, nil) }

// CompileWithSlots is Compile for expressions that may read let-bound frame
// slots; slotOK reports which slots have vectorized values available.
func CompileWithSlots(e ast.Expr, slotOK func(slot int) bool) (*Prog, bool) {
	c := &compiler{slotOK: slotOK, iterSlot: -1}
	out := c.compile(e)
	if c.fail || out < 0 {
		return nil, false
	}
	c.p.out = out
	c.p.nRegs = len(c.p.ins)
	return &c.p, true
}

// payloadKind reports whether a kind shares the float64 column payload.
func payloadKind(k value.Kind) bool {
	return k == value.KindNumber || k == value.KindBool || k == value.KindRef
}

// zeroPayload is the float64 payload of value.Zero(k) for payload kinds.
func zeroPayload(k value.Kind) float64 {
	if k == value.KindRef {
		return float64(value.NullID)
	}
	return 0
}

type compiler struct {
	p      Prog
	slotOK func(int) bool
	fail   bool

	// Accum-gather mode (CompileAccum): iterSlot >= 0 flips lane meaning —
	// lanes are candidate rows of the iterated class, iter field reads
	// become column loads over gathered candidate columns, and probing-row
	// scalars (self attrs, locals, self id) become broadcasts.
	iterSlot int
	bcast    []BcastSrc
	cols     []int
}

func (c *compiler) emit(i instr) int {
	i.dst = len(c.p.ins)
	c.p.ins = append(c.p.ins, i)
	return i.dst
}

func (c *compiler) bail() int {
	c.fail = true
	return -1
}

func (c *compiler) compile(e ast.Expr) int {
	if c.fail {
		return -1
	}
	switch e := e.(type) {
	case *ast.NumLit:
		return c.emit(instr{op: opConst, imm: e.V})
	case *ast.BoolLit:
		v := 0.0
		if e.V {
			v = 1
		}
		return c.emit(instr{op: opConst, imm: v})
	case *ast.NullLit:
		return c.emit(instr{op: opConst, imm: float64(value.NullID)})
	case *ast.StrLit:
		return c.bail()
	case *ast.Ident:
		return c.compileIdent(e)
	case *ast.FieldExpr:
		if !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		if c.iterSlot >= 0 && isIterIdent(e.X, c.iterSlot) {
			// Iter field read: a direct load from the gathered candidate
			// columns — the core of the columnar join fold.
			c.useCol(e.AttrIdx)
			return c.emit(instr{op: opLoadCol, attr: e.AttrIdx})
		}
		x := c.compile(e.X)
		if x < 0 {
			return -1
		}
		return c.emit(instr{op: opGather, a: x, class: e.Class, attr: e.AttrIdx, imm: zeroPayload(e.Ty.Kind)})
	case *ast.UnaryExpr:
		x := c.compile(e.X)
		if x < 0 {
			return -1
		}
		switch e.Op {
		case token.MINUS:
			return c.emit(instr{op: opNeg, a: x})
		case token.NOT:
			return c.emit(instr{op: opNot, a: x})
		}
		return c.bail()
	case *ast.BinaryExpr:
		return c.compileBinary(e)
	case *ast.CondExpr:
		if !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		cc, t, f := c.compile(e.C), c.compile(e.T), c.compile(e.F)
		if cc < 0 || t < 0 || f < 0 {
			return -1
		}
		return c.emit(instr{op: opSel, a: cc, b: t, c: f})
	case *ast.CallExpr:
		return c.compileCall(e)
	default:
		return c.bail()
	}
}

func (c *compiler) compileIdent(e *ast.Ident) int {
	if c.iterSlot >= 0 {
		return c.compileAccumIdent(e)
	}
	switch e.Bind.Kind {
	case ast.BindStateAttr:
		if !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		return c.emit(instr{op: opLoadCol, attr: e.Bind.AttrIdx})
	case ast.BindLocal:
		if c.slotOK == nil || !c.slotOK(e.Bind.Slot) || !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		return c.emit(instr{op: opLoadSlot, attr: e.Bind.Slot})
	case ast.BindSelf:
		c.p.needIDs = true
		return c.emit(instr{op: opSelfID})
	case ast.BindEffectAttr:
		if !payloadKind(e.Ty.Kind) {
			return c.bail()
		}
		c.p.fxUsed = append(c.p.fxUsed, e.Bind.AttrIdx)
		return c.emit(instr{op: opLoadFx, attr: e.Bind.AttrIdx})
	default: // BindIter, BindExtent, unresolved
		return c.bail()
	}
}

func (c *compiler) compileBinary(e *ast.BinaryExpr) int {
	// String comparisons have no columnar payload; everything else shares
	// float64 ordering with value.Compare/Equal.
	if !payloadKind(e.X.Type().Kind) || !payloadKind(e.Y.Type().Kind) {
		return c.bail()
	}
	x, y := c.compile(e.X), c.compile(e.Y)
	if x < 0 || y < 0 {
		return -1
	}
	var o op
	switch e.Op {
	case token.PLUS:
		o = opAdd
	case token.MINUS:
		o = opSub
	case token.STAR:
		o = opMul
	case token.SLASH:
		o = opDiv
	case token.PERCENT:
		o = opMod
	case token.LT:
		o = opLT
	case token.LE:
		o = opLE
	case token.GT:
		o = opGT
	case token.GE:
		o = opGE
	case token.EQ:
		o = opEQ
	case token.NEQ:
		o = opNEQ
	case token.ANDAND:
		o = opAnd
	case token.OROR:
		o = opOr
	default:
		return c.bail()
	}
	return c.emit(instr{op: o, a: x, b: y})
}

func (c *compiler) compileCall(e *ast.CallExpr) int {
	args := make([]int, len(e.Args))
	for i, a := range e.Args {
		if args[i] = c.compile(a); args[i] < 0 {
			return -1
		}
	}
	switch e.Builtin {
	case ast.BAbs:
		return c.emit(instr{op: opAbs, a: args[0]})
	case ast.BMin:
		return c.emit(instr{op: opMin, a: args[0], b: args[1]})
	case ast.BMax:
		return c.emit(instr{op: opMax, a: args[0], b: args[1]})
	case ast.BFloor:
		return c.emit(instr{op: opFloor, a: args[0]})
	case ast.BCeil:
		return c.emit(instr{op: opCeil, a: args[0]})
	case ast.BSqrt:
		return c.emit(instr{op: opSqrt, a: args[0]})
	case ast.BClamp:
		return c.emit(instr{op: opClamp, a: args[0], b: args[1], c: args[2]})
	case ast.BDist:
		return c.emit(instr{op: opDist, a: args[0], b: args[1], c: args[2], d: args[3]})
	case ast.BID:
		// id(ref) reinterprets the payload as a number — already identical.
		return args[0]
	case ast.BSelfFn:
		if c.iterSlot >= 0 {
			// In accum mode, self() is the probing row — a broadcast.
			return c.bcastReg(BcastSrc{Kind: BcastSelfID})
		}
		c.p.needIDs = true
		return c.emit(instr{op: opSelfID})
	default: // size/contains operate on sets
		return c.bail()
	}
}

// prepare sizes the machine's registers for p. Alias ops (loads) get their
// register rebound per batch; compute ops own a batch-sized scratch slice.
func (m *Machine) prepare(p *Prog) {
	if len(m.regs) < p.nRegs {
		m.regs = append(m.regs, make([][]float64, p.nRegs-len(m.regs))...)
	}
	need := 0
	for _, in := range p.ins {
		if !aliasOp(in.op) {
			need += batchSize
		}
	}
	if cap(m.scratch) < need {
		m.scratch = make([]float64, need)
	}
	m.scratch = m.scratch[:0]
	off := 0
	for _, in := range p.ins {
		if !aliasOp(in.op) {
			m.regs[in.dst] = m.scratch[off : off+batchSize][:batchSize]
			off += batchSize
		}
	}
}

func aliasOp(o op) bool {
	switch o {
	case opLoadCol, opLoadFx, opLoadSlot, opSelfID:
		return true
	}
	return false
}

// Run evaluates the program for physical rows [lo, hi), writing each row's
// result payload to out[row]. Rows are processed in batches; dead rows may
// be evaluated (their results are ignored by callers), which is safe
// because SGL expressions are total.
func (p *Prog) Run(m *Machine, env *Env, lo, hi int, out []float64) {
	m.prepare(p)
	for start := lo; start < hi; start += batchSize {
		end := start + batchSize
		if end > hi {
			end = hi
		}
		p.runBatch(m, env, start, end)
		copy(out[start:end], m.regs[p.out][:end-start])
	}
}

func (p *Prog) runBatch(m *Machine, env *Env, lo, hi int) {
	n := hi - lo
	for _, in := range p.ins {
		switch in.op {
		case opConst:
			dst := m.regs[in.dst][:n]
			for i := range dst {
				dst[i] = in.imm
			}
		case opLoadCol:
			m.regs[in.dst] = env.Cols[in.attr][lo:hi]
		case opLoadFx:
			m.regs[in.dst] = env.Fx[in.attr][lo:hi]
		case opLoadSlot:
			m.regs[in.dst] = env.Slots[in.attr][lo:hi]
		case opSelfID:
			m.regs[in.dst] = env.IDs[lo:hi]
		case opBcast:
			dst := m.regs[in.dst][:n]
			v := env.Bcast[in.attr]
			for i := range dst {
				dst[i] = v
			}
		case opGather:
			env.Gather(in.class, in.attr, m.regs[in.a][:n], m.regs[in.dst][:n], in.imm)
		case opNeg:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = -a[i]
			}
		case opNot:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				if a[i] == 0 {
					dst[i] = 1
				} else {
					dst[i] = 0
				}
			}
		case opAdd:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		case opSub:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] - b[i]
			}
		case opMul:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] * b[i]
			}
		case opDiv:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = a[i] / b[i]
			}
		case opMod:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Mod(a[i], b[i])
			}
		case opLT:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] < b[i])
			}
		case opLE:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] <= b[i])
			}
		case opGT:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] > b[i])
			}
		case opGE:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] >= b[i])
			}
		case opEQ:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] == b[i])
			}
		case opNEQ:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != b[i])
			}
		case opAnd:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 && b[i] != 0)
			}
		case opOr:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = b2f(a[i] != 0 || b[i] != 0)
			}
		case opSel:
			dst, cc, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				if cc[i] != 0 {
					dst[i] = a[i]
				} else {
					dst[i] = b[i]
				}
			}
		case opAbs:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Abs(a[i])
			}
		case opMin:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Min(a[i], b[i])
			}
		case opMax:
			dst, a, b := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n]
			for i := range dst {
				dst[i] = math.Max(a[i], b[i])
			}
		case opFloor:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Floor(a[i])
			}
		case opCeil:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Ceil(a[i])
			}
		case opSqrt:
			dst, a := m.regs[in.dst][:n], m.regs[in.a][:n]
			for i := range dst {
				dst[i] = math.Sqrt(a[i])
			}
		case opClamp:
			dst, x, lov, hiv := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n]
			for i := range dst {
				dst[i] = math.Min(math.Max(x[i], lov[i]), hiv[i])
			}
		case opDist:
			dst, x1, y1, x2, y2 := m.regs[in.dst][:n], m.regs[in.a][:n], m.regs[in.b][:n], m.regs[in.c][:n], m.regs[in.d][:n]
			for i := range dst {
				dst[i] = math.Hypot(x1[i]-x2[i], y1[i]-y2[i])
			}
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
