package vexpr_test

import (
	"math/rand"
	"testing"

	"repro/internal/sgl/ast"
	"repro/internal/sgl/token"
	"repro/internal/vexpr"
)

// Kernel micro-benchmarks: BenchmarkVexpr* compares the fused, specialized,
// invariant-hoisted executor against the NoOpt one-op-per-batch interpreter
// on the same programs, so fusion regressions surface in the CI bench-smoke
// job (go test -bench BenchmarkVexpr -benchtime 100x ./internal/vexpr).

const benchRows = 64 * 1024

// benchExpr is an FMA-and-clamp-shaped chain the peephole pass collapses:
// clamp(n0*n1 + n0, 0, 100) → 3 loads + mul-add + clamp, constants hoisted.
func benchExpr() ast.Expr {
	mulAdd := &ast.BinaryExpr{Op: token.PLUS,
		X:  &ast.BinaryExpr{Op: token.STAR, X: xIdent(xAttrN0), Y: xIdent(xAttrN1), Ty: ast.NumberT},
		Y:  xIdent(xAttrN0),
		Ty: ast.NumberT,
	}
	return &ast.CallExpr{Name: "clamp", Builtin: ast.BClamp,
		Args: []ast.Expr{mulAdd, &ast.NumLit{V: 0}, &ast.NumLit{V: 100}}, Ty: ast.NumberT}
}

// benchMaskExpr is an accum-residual-shaped mask chain: three conjuncts over
// comparisons and a string predicate.
func benchMaskExpr() ast.Expr {
	and := func(x, y ast.Expr) ast.Expr {
		return &ast.BinaryExpr{Op: token.ANDAND, X: x, Y: y, Ty: ast.BoolT}
	}
	lt := &ast.BinaryExpr{Op: token.LT, X: xIdent(xAttrN0), Y: xIdent(xAttrN1), Ty: ast.BoolT}
	ge := &ast.BinaryExpr{Op: token.GE, X: xIdent(xAttrN1), Y: &ast.NumLit{V: -50}, Ty: ast.BoolT}
	neq := &ast.BinaryExpr{Op: token.NEQ, X: xIdent(xAttrS0), Y: &ast.StrLit{V: "red"}, Ty: ast.BoolT}
	return and(and(lt, ge), neq)
}

func benchRun(b *testing.B, e ast.Expr, o vexpr.Opts) {
	b.Helper()
	dict := newTestDict()
	o.Dict = dict
	prog, ok := vexpr.CompileOpts(e, o)
	if !ok {
		b.Fatalf("expression must compile: %s", ast.ExprString(e))
	}
	rng := rand.New(rand.NewSource(3))
	w := newXWorld(rng, benchRows, dict)
	env := &vexpr.Env{Cols: w.cols, IDs: w.ids, Gather: w.gather}
	out := make([]float64, benchRows)
	var m vexpr.Machine
	b.SetBytes(benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Run(&m, env, 0, benchRows, out)
	}
}

func BenchmarkVexprFusedArith(b *testing.B) {
	benchRun(b, benchExpr(), vexpr.Opts{})
}

func BenchmarkVexprInterpretedArith(b *testing.B) {
	benchRun(b, benchExpr(), vexpr.Opts{NoOpt: true})
}

func BenchmarkVexprFusedMask(b *testing.B) {
	benchRun(b, benchMaskExpr(), vexpr.Opts{})
}

func BenchmarkVexprInterpretedMask(b *testing.B) {
	benchRun(b, benchMaskExpr(), vexpr.Opts{NoOpt: true})
}

// BenchmarkVexprConstHoist* pins the satellite fix: constants and broadcasts
// are materialized once per Run, not once per batch. The constant-heavy
// program makes per-batch refill cost visible.
func benchConstExpr() ast.Expr {
	e := ast.Expr(xIdent(xAttrN0))
	for i := 0; i < 6; i++ {
		e = &ast.BinaryExpr{Op: token.PLUS, X: e, Y: &ast.NumLit{V: float64(i)}, Ty: ast.NumberT}
	}
	return e
}

func BenchmarkVexprConstHoist(b *testing.B) {
	benchRun(b, benchConstExpr(), vexpr.Opts{})
}

func BenchmarkVexprConstRefill(b *testing.B) {
	benchRun(b, benchConstExpr(), vexpr.Opts{NoOpt: true})
}
