// Command sglbench regenerates every experiment table in EXPERIMENTS.md
// (the reproduction of the paper's quantitative claims; see DESIGN.md §5
// for the experiment index).
//
// Usage:
//
//	sglbench [-quick] [-md] [-json] [-only E1,E7] [-cpuprofile prof.out]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller populations and fewer ticks")
	md := flag.Bool("md", false, "emit markdown tables")
	jsonOut := flag.Bool("json", false, "emit one JSON object per table (machine-readable BENCH capture)")
	only := flag.String("only", "", "comma-separated experiment ids (default all)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// The baseline and nested-loop arms are O(n²); population sizes keep
	// the full run under a few minutes while preserving the scaling shape.
	sizes := []int{1000, 2000, 5000}
	e1Ticks, e2Ticks := 3, 3
	e7N, e7Block, e7Blocks := 2000, 10, 6
	e9N := 20000
	e10 := []int{10000, 30000, 100000}
	e11V, e11Ticks := 50000, 3
	e12V := 50000
	e13Sizes := []int{10000, 50000, 100000, 200000}
	e14N, e14Workers := 100000, []int{1, 2, 4, 8}
	e15Sizes := map[string][]int{
		"fig2":  {5000, 20000},
		"rts":   {5000, 20000},
		"flock": {5000, 20000},
	}
	e15Ticks := 5
	e16V, e16Parts, e16Ticks := 50000, []int{1, 2, 4, 8}, 3
	e17N, e17Parts, e17Ticks := 50000, 8, 60
	e19Worlds, e19Objects, e19Rounds := 2000, 500, 20
	e20Pairs, e20Ticks := 10000, 24
	e21Objects, e21Subs, e21Ticks := 20000, []int{10000, 30000, 100000}, 5
	if *quick {
		sizes = []int{500, 1000, 2000}
		e1Ticks, e2Ticks = 3, 3
		e7N, e7Block, e7Blocks = 1000, 5, 4
		e9N = 5000
		e10 = []int{5000, 20000}
		e11V, e11Ticks = 20000, 2
		e12V = 20000
		e13Sizes = []int{5000, 20000}
		e14N, e14Workers = 20000, []int{1, 2, 4}
		e15Sizes = map[string][]int{"fig2": {2000}, "rts": {2000}, "flock": {2000}}
		e15Ticks = 2
		e16V, e16Parts, e16Ticks = 10000, []int{1, 2, 4}, 2
		e17N, e17Parts, e17Ticks = 10000, 4, 25
		e19Worlds, e19Objects, e19Rounds = 200, 200, 10
		e20Pairs, e20Ticks = 2000, 9
		e21Objects, e21Subs, e21Ticks = 4000, []int{2000, 10000}, 3
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	emit := func(t experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", t.ID, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			fmt.Println(t.JSON())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.Format())
		}
	}

	if sel("E1") {
		emit(experiments.E1(sizes, e1Ticks))
	}
	if sel("E2") {
		emit(experiments.E2(sizes, e2Ticks))
	}
	if sel("E3") {
		emit(experiments.E3([]int{100, 400, 1000}, 5))
	}
	if sel("E4") {
		emit(experiments.E4([]int{1, 2, 4, 8, 16}))
	}
	if sel("E5") {
		emit(experiments.E5(10000, 9))
	}
	if sel("E6") {
		emit(experiments.E6(20000, 10))
	}
	if sel("E7") {
		emit(experiments.E7(e7N, e7Block, e7Blocks))
	}
	if sel("E8") {
		emit(experiments.E8(10000, 10))
	}
	if sel("E9") {
		emit(experiments.E9(e9N, []int{1, 2, 4, 8}, 5))
	}
	if sel("E10") {
		emit(experiments.E10(e10), nil)
	}
	if sel("E11") {
		emit(experiments.E11(e11V, []int{2, 4, 8, 16}, e11Ticks))
	}
	if sel("E12") {
		emit(experiments.E12(e12V, []int{1, 2, 4, 8, 16}))
	}
	if sel("E13") {
		emit(experiments.E13(e13Sizes, 3))
	}
	if sel("E14") {
		emit(experiments.E14(e14N, e14Workers, 3))
	}
	if sel("E15") {
		emit(experiments.E15(e15Sizes, e15Ticks))
	}
	if sel("E16") {
		emit(experiments.E16(e16V, e16Parts, e16Ticks))
	}
	if sel("E17") {
		emit(experiments.E17(e17N, e17Parts, e17Ticks))
	}
	if sel("E19") {
		emit(experiments.E19(e19Worlds, e19Objects, e19Rounds))
	}
	if sel("E20") {
		emit(experiments.E20(e20Pairs, e20Ticks))
	}
	if sel("E21") {
		emit(experiments.E21(e21Objects, e21Subs, e21Ticks))
	}
	fmt.Fprintf(os.Stderr, "total %s\n", experiments.ElapsedString(time.Since(start)))
}
