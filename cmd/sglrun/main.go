// Command sglrun executes an SGL script: it spawns a population of the
// first declared class at random positions and runs the tick loop,
// optionally logging per-tick summaries, dumping state, or tracing one
// NPC's effects — the §3.3 debugging workflow from the shell.
//
// Usage:
//
//	sglrun [-n 1000] [-ticks 100] [-workers 1] [-strategy auto]
//	       [-world 500] [-log] [-dump] [-trace id] [-seed 42] file.sgl
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	sgl "repro"
	"repro/internal/debug"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 1000, "objects to spawn (first declared class)")
	ticks := flag.Int("ticks", 100, "ticks to run")
	workers := flag.Int("workers", 1, "effect-phase parallelism")
	strategy := flag.String("strategy", "auto", "accum join strategy: auto|nested-loop|grid|range-tree")
	world := flag.Float64("world", 500, "world side length for random x/y placement")
	logTicks := flag.Bool("log", false, "log per-tick class counts")
	dump := flag.Bool("dump", false, "dump final state")
	trace := flag.Int64("trace", -1, "trace effects assigned to this object id")
	seed := flag.Int64("seed", 42, "placement seed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sglrun [flags] file.sgl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	game, err := sgl.Load(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	var strat sgl.Strategy
	switch *strategy {
	case "auto":
		strat = sgl.Auto
	case "nested-loop":
		strat = sgl.NestedLoop
	case "grid":
		strat = sgl.GridIndex
	case "range-tree":
		strat = sgl.RangeTreeIndex
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	w, err := game.NewWorld(sgl.Options{Workers: *workers, Strategy: strat})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if missing := w.MissingOwners(); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "script declares owner components not available to sglrun: %v\n", missing)
		os.Exit(1)
	}
	class := game.Classes()[0]
	cls, _ := game.Info().Schema.Class(class)
	hasX := cls.StateIndex("x") >= 0 && cls.StateIndex("y") >= 0
	for _, p := range workload.Uniform(*n, *world, *world, *seed) {
		init := map[string]sgl.Value{}
		if hasX {
			init["x"] = sgl.Num(p.X)
			init["y"] = sgl.Num(p.Y)
		}
		if _, err := w.Spawn(class, init); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *logTicks {
		w.AddInspector(debug.NewLogger(os.Stdout))
	}
	var npcTrace *debug.NPCTrace
	if *trace >= 0 {
		npcTrace = &debug.NPCTrace{ID: sgl.ID(*trace)}
		w.SetTracer(npcTrace.Fn())
	}
	start := time.Now()
	if err := w.Run(*ticks); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("%d ticks over %d %s objects in %v (%.2f ms/tick)\n",
		*ticks, *n, class, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(*ticks)/1000)
	for _, s := range w.SiteStrategies() {
		fmt.Println("plan:", s)
	}
	if npcTrace != nil {
		fmt.Printf("trace of #%d: %d events\n", *trace, len(npcTrace.Events))
		for i, e := range npcTrace.Events {
			if i >= 20 {
				fmt.Printf("... %d more\n", len(npcTrace.Events)-20)
				break
			}
			fmt.Println("  ", e)
		}
	}
	if *dump {
		fmt.Print(debug.Dump(w, class))
	}
}
