// Command sglc is the SGL compiler front end: it parses, type-checks and
// compiles SGL source, then reports the derived relational schema, the
// relational-algebra view of each class plan, or the canonicalized source.
//
// Usage:
//
//	sglc [-plan] [-schema] [-src] file.sgl
//	sglc vet [-json] file.sgl...
//
// With no flags, sglc prints everything. The vet subcommand runs the
// static-analysis diagnostics (dead handlers and branches, unsatisfiable
// or trivial atomic constraints, half-open join ranges, scalar-pinning
// cross emissions, dead effect attributes) and exits non-zero when any
// file produces findings.
package main

import (
	"flag"
	"fmt"
	"os"

	sgl "repro"
	"repro/internal/schema"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	plan := flag.Bool("plan", false, "print the relational-algebra plan per class")
	sch := flag.Bool("schema", false, "print the generated relational schema")
	src := flag.Bool("src", false, "print the canonicalized SGL source")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sglc [-plan] [-schema] [-src] file.sgl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	game, err := sgl.Load(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	all := !*plan && !*sch && !*src
	if *src || all {
		fmt.Println("// canonicalized source")
		fmt.Print(game.Source())
		fmt.Println()
	}
	if *sch || all {
		fmt.Println("// generated relational schema (single-table layout)")
		for _, class := range game.Classes() {
			printSchema(game, class)
		}
		fmt.Println()
	}
	if *plan || all {
		fmt.Println("// compiled tick plans")
		for _, class := range game.Classes() {
			fmt.Print(game.Explain(class))
		}
	}
}

func printSchema(game *sgl.Game, class string) {
	info := game.Info()
	cls, ok := info.Schema.Class(class)
	if !ok {
		return
	}
	for _, spec := range schema.Layout(cls, schema.LayoutSingle, nil) {
		fmt.Printf("table %s(", spec.Name)
		for i, a := range spec.Attrs {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(a)
		}
		fmt.Println(")")
	}
}
