package main

// The `sglc vet` subcommand: author-facing diagnostics from the unified
// static-analysis layer (internal/analysis). Each finding is anchored to a
// source position and states the physical-planning consequence of the
// construct — dead handlers, provably dead branches, unsatisfiable or
// trivial atomic constraints, half-open join ranges that force full ghost
// replication, cross-object emissions that pin a class scalar, and effect
// attributes whose folded value nothing reads.
//
// With -perf, the opt-in scalar-fallback check also runs: it reports every
// point where execution silently leaves the fused kernel path (update
// rules and phase expressions the kernel compiler bails on, residual join
// conjuncts with no mask-kernel form, string-keyed ordered folds) along
// with the reason. These are trade-offs, not mistakes, so they are not
// part of the default check set.
//
// Exit status is 0 when every file is clean, 1 when any file fails to
// compile or produces diagnostics, 2 on usage errors.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/compile"
	"repro/internal/sgl/parser"
	"repro/internal/sgl/sem"
)

type vetFinding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Code  string `json:"code"`
	Class string `json:"class"`
	Msg   string `json:"msg"`
}

func runVet(args []string) int {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	perf := fs.Bool("perf", false, "also report scalar-fallback performance diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sglc vet [-json] [-perf] file.sgl...\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	findings := []vetFinding{}
	failed := false
	for _, file := range fs.Args() {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		p, err := parser.Parse(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", file, err)
			failed = true
			continue
		}
		info, err := sem.Analyze(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", file, err)
			failed = true
			continue
		}
		prog, err := compile.CompileChecked(info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", file, err)
			failed = true
			continue
		}
		r := analysis.Analyze(prog)
		diags := analysis.VetResult(r)
		diags = append(diags, analysis.VetViews(prog, string(data))...)
		if *perf {
			diags = append(diags, analysis.VetPerfResult(r)...)
		}
		for _, d := range diags {
			findings = append(findings, vetFinding{
				File: file, Line: d.Pos.Line, Col: d.Pos.Col,
				Code: d.Code, Class: d.Class, Msg: d.Msg,
			})
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Code, f.Msg)
		}
	}
	if failed || len(findings) > 0 {
		return 1
	}
	return 0
}
