// Command sglvet runs the repository's custom determinism-lint suite — a
// multichecker over the deterministic-core packages:
//
//	maprange   range over a map on engine/index/txn merge-and-fold paths
//	nodeterm   time.Now / math/rand in the deterministic core
//	statsgate  stats-counter writes outside a DisableStats gate
//
// Findings can be suppressed per line with `//sglvet:allow <analyzer>: why`.
// Exit status is 1 when any finding survives, so CI can enforce zero.
//
// Usage:
//
//	sglvet [-root dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tools/analyzers"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	flag.Parse()
	pkgs, err := analyzers.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings := analyzers.Run(pkgs, analyzers.All)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sglvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
