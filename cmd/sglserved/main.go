// Command sglserved runs the many-world server (DESIGN.md §4.12) over a
// fleet of SrcVehicles worlds and reports scheduler and plan-cache
// counters. It is the operational face of the server package: the same
// shared worker pool, compiled-plan cache, pooled arenas and hibernation
// machinery the E19 experiment measures, driven from flags.
//
// Usage:
//
//	sglserved -worlds 2000 -objects 500 -rounds 50
//	sglserved -worlds 200 -objects 500 -realtime -hz 20 -duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	worlds := flag.Int("worlds", 2000, "number of hosted worlds")
	objects := flag.Int("objects", 500, "vehicles per world")
	rounds := flag.Int("rounds", 50, "batch scheduling rounds (ignored with -realtime)")
	workers := flag.Int("workers", 0, "shared pool size (0 = NumCPU)")
	hibernateAfter := flag.Int("hibernate-after", 0, "idle ticks before hibernation (0 = off)")
	every := flag.Int("every", 1, "tick-rate divisor: each world ticks every Nth round/period")
	hz := flag.Float64("hz", 20, "base tick rate for -realtime (ticks/s for every=1 worlds)")
	realtime := flag.Bool("realtime", false, "serve with the EDF real-time scheduler instead of batch rounds")
	duration := flag.Duration("duration", 5*time.Second, "how long to serve with -realtime")
	flag.Parse()

	cfg := server.Config{Workers: *workers, HibernateAfter: *hibernateAfter}
	if *hz > 0 {
		cfg.TickPeriod = time.Duration(float64(time.Second) / *hz)
	}
	srv := server.New(cfg)

	for i := 0; i < *worlds; i++ {
		h, err := srv.AddWorld(fmt.Sprintf("world-%04d", i), core.SrcVehicles, *every)
		if err != nil {
			fatal(err)
		}
		eng, err := h.Engine()
		if err != nil {
			fatal(err)
		}
		ps := workload.Uniform(*objects, 4000, 4000, int64(1000+i))
		if _, err := core.PopulateVehicles(eng, ps); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	if *realtime {
		ctx, cancel := context.WithTimeout(context.Background(), *duration)
		defer cancel()
		if err := srv.Serve(ctx); err != nil && err != context.DeadlineExceeded {
			fatal(err)
		}
	} else {
		if err := srv.RunRounds(*rounds); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)

	c := srv.Counters()
	fmt.Printf("worlds          %d (%d objects each)\n", *worlds, *objects)
	fmt.Printf("elapsed         %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("ticks run       %d (%.0f world-ticks/s, %.2fM obj-ticks/s)\n",
		c.TicksRun, float64(c.TicksRun)/elapsed.Seconds(),
		float64(c.TicksRun)*float64(*objects)/elapsed.Seconds()/1e6)
	fmt.Printf("plan cache      %d hits / %d misses (%.4f hit rate)\n",
		c.PlanCacheHits, c.PlanCacheMisses,
		float64(c.PlanCacheHits)/float64(c.PlanCacheHits+c.PlanCacheMisses))
	fmt.Printf("worlds active   %d, hibernated %d (%d hibernations, %d restores)\n",
		c.WorldsActive, c.WorldsHibernated, c.Hibernations, c.Restores)
	if *realtime {
		fmt.Printf("deadline misses %d (lag %s)\n",
			c.TickDeadlineMisses, time.Duration(c.TickLagNanos).Round(time.Microsecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
